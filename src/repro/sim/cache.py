"""Last level cache (LLC) and Data Direct I/O (DDIO) models.

On the Intel systems the paper studies, the PCIe root complex is integrated
with the CPU's uncore and DMAs interact with the last level cache:

* DMA reads are serviced from the LLC when the target line is resident,
  saving roughly 70 ns over a memory access (§6.3).
* DMA writes allocate into a slice of the LLC reserved for DDIO (about 10%
  of the cache).  While the working set fits that slice, writes (and the
  reads that follow them in ``LAT_WRRD``) stay in the cache; beyond it,
  dirty lines must be written back to memory first, costing about 70 ns.

Two implementations are provided:

:class:`SetAssociativeCache`
    A faithful, line-granular, set-associative LRU cache with a DDIO way
    mask.  Exact but O(lines) to warm, so best suited to unit tests, small
    windows and detailed studies.

:class:`StatisticalCache`
    A capacity-occupancy approximation that answers "is this line resident?"
    probabilistically from the window size, warm state and DDIO capacity.
    This is what the benchmark fast path uses for multi-megabyte windows,
    where warming a line-accurate model would dominate run time without
    changing the observable medians.

Both expose the same :class:`CacheInterface` protocol so the root complex
does not care which one it is given.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..errors import ValidationError
from ..units import CACHELINE_BYTES, MIB
from .rng import SimRng


def _check_partition_shares(shares: Sequence[float]) -> tuple[float, ...]:
    """Validate and normalise per-partition capacity shares."""
    values = tuple(float(share) for share in shares)
    if len(values) < 2:
        raise ValidationError(
            f"a partition needs at least two shares, got {len(values)}"
        )
    if any(share <= 0 for share in values):
        raise ValidationError(f"partition shares must be positive, got {values}")
    total = sum(values)
    return tuple(share / total for share in values)


class CacheState(enum.Enum):
    """How the benchmark prepares the cache before measuring (§4)."""

    #: Cache thrashed before the run: no benchmark line is resident.
    COLD = "cold"
    #: Host CPU wrote the window before the run: lines resident up to LLC size.
    HOST_WARM = "host_warm"
    #: Device DMA-wrote the window before the run: lines resident only up to
    #: the DDIO slice of the LLC.
    DEVICE_WARM = "device_warm"

    @classmethod
    def from_value(cls, value: "CacheState | str") -> "CacheState":
        """Coerce ``"cold"`` / ``"warm"`` / ``"host_warm"`` / ``"device_warm"``."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        if text == "warm":
            return cls.HOST_WARM
        try:
            return cls(text)
        except ValueError as exc:
            raise ValidationError(f"unknown cache state {value!r}") from exc


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of one cache access initiated by a DMA."""

    #: The access was served by the LLC (line was resident).
    hit: bool
    #: The access had to evict a dirty line first (DDIO slice overflow on writes).
    writeback_required: bool = False
    #: The line was newly allocated into the cache by this access.
    allocated: bool = False


class CacheInterface(Protocol):
    """Protocol shared by the faithful and the statistical cache models."""

    llc_bytes: int
    ddio_fraction: float

    def read(self, line_address: int) -> CacheAccessResult:
        """Device DMA read touching ``line_address`` (a cache-line index)."""

    def write(self, line_address: int) -> CacheAccessResult:
        """Device DMA write touching ``line_address`` (a cache-line index)."""

    def prepare(self, state: CacheState, window_lines: int) -> None:
        """Prime the cache for a benchmark over ``window_lines`` distinct lines."""

    @property
    def ddio_bytes(self) -> int:
        """Capacity of the DDIO slice in bytes."""
        ...


#: Fraction of the LLC reserved for DDIO write allocation on the paper's systems.
DEFAULT_DDIO_FRACTION = 0.10
#: Default LLC size of the Table 1 systems (all 15 MiB except the 25 MiB BDW).
DEFAULT_LLC_BYTES = 15 * MIB


def _check_cache_args(llc_bytes: int, ddio_fraction: float) -> None:
    if llc_bytes <= 0:
        raise ValidationError(f"llc_bytes must be positive, got {llc_bytes}")
    if not 0.0 < ddio_fraction <= 1.0:
        raise ValidationError(
            f"ddio_fraction must be in (0, 1], got {ddio_fraction}"
        )


# ---------------------------------------------------------------------------
# Faithful model
# ---------------------------------------------------------------------------


class SetAssociativeCache:
    """Line-accurate set-associative LRU cache with a DDIO way restriction.

    The model tracks which cache lines are resident and dirty.  Device writes
    may only allocate into ``ddio_ways`` of each set (mirroring how DDIO
    restricts write allocation to a subset of LLC ways), while host warming
    and device reads that hit keep lines in the general portion.

    :meth:`partition_ddio` additionally splits the DDIO ways between
    *owners* (devices sharing the cache, identified by a line-address
    resolver): each owner's write allocations are confined to its own way
    budget, so one device's bulk writes can only evict that device's own
    DDIO lines — the isolation mechanism way-partitioned DDIO provides on
    real uncores.  Unpartitioned caches behave exactly as before (one
    owner holding every DDIO way).
    """

    def __init__(
        self,
        llc_bytes: int = DEFAULT_LLC_BYTES,
        *,
        ways: int = 20,
        ddio_fraction: float = DEFAULT_DDIO_FRACTION,
        line_bytes: int = CACHELINE_BYTES,
    ) -> None:
        _check_cache_args(llc_bytes, ddio_fraction)
        if ways <= 0:
            raise ValidationError(f"ways must be positive, got {ways}")
        if line_bytes <= 0:
            raise ValidationError(f"line_bytes must be positive, got {line_bytes}")
        total_lines = llc_bytes // line_bytes
        if total_lines < ways:
            raise ValidationError("cache too small for the requested associativity")
        self.llc_bytes = llc_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.ddio_fraction = ddio_fraction
        self.ddio_ways = max(1, int(round(ways * ddio_fraction)))
        self.sets = total_lines // ways
        # Each set maps line_address -> dirty flag, in LRU order (oldest first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.sets)
        ]
        # Lines allocated by device writes (the DDIO-occupancy accounting),
        # per set and per DDIO-way partition; unpartitioned caches hold one
        # partition owning every DDIO way.
        self._ddio_budgets: tuple[int, ...] = (self.ddio_ways,)
        self._ddio_owner: Callable[[int], int] | None = None
        self._ddio_lines: list[list[set[int]]] = [
            [set()] for _ in range(self.sets)
        ]
        self.stats = CacheStats()

    @property
    def ddio_bytes(self) -> int:
        """Capacity available to DDIO write allocation."""
        return self.sets * self.ddio_ways * self.line_bytes

    @property
    def ddio_way_split(self) -> tuple[int, ...]:
        """Per-partition DDIO way budgets (one entry when unpartitioned)."""
        return self._ddio_budgets

    def partition_ddio(
        self, shares: Sequence[float], owner: Callable[[int], int]
    ) -> None:
        """Split the DDIO ways between owners resolved per line address.

        Args:
            shares: relative way shares, one per owner (normalised; every
                owner is guaranteed at least one way).
            owner: maps a line address to its owner index — typically the
                device an address region belongs to.
        """
        normalised = _check_partition_shares(shares)
        if len(normalised) > self.ddio_ways:
            raise ValidationError(
                f"cannot split {self.ddio_ways} DDIO ways between "
                f"{len(normalised)} owners (each needs at least one way)"
            )
        budgets = [
            max(1, int(self.ddio_ways * share)) for share in normalised
        ]
        # Trim the largest budgets until the split fits the DDIO ways.
        while sum(budgets) > self.ddio_ways:
            largest = max(range(len(budgets)), key=lambda i: (budgets[i], -i))
            budgets[largest] -= 1
        self._ddio_budgets = tuple(budgets)
        self._ddio_owner = owner
        self._ddio_lines = [
            [set() for _ in budgets] for _ in range(self.sets)
        ]

    def _owner(self, line_address: int) -> int:
        if self._ddio_owner is None:
            return 0
        return self._ddio_owner(line_address)

    def _set_index(self, line_address: int) -> int:
        return line_address % self.sets

    # -- device-side accesses -----------------------------------------------------

    def read(self, line_address: int) -> CacheAccessResult:
        """Device DMA read: hits if resident, never allocates on miss."""
        index = self._set_index(line_address)
        cache_set = self._sets[index]
        if line_address in cache_set:
            cache_set.move_to_end(line_address)
            self.stats.read_hits += 1
            return CacheAccessResult(hit=True)
        self.stats.read_misses += 1
        return CacheAccessResult(hit=False)

    def write(self, line_address: int) -> CacheAccessResult:
        """Device DMA write: hits update in place, misses allocate via DDIO."""
        index = self._set_index(line_address)
        cache_set = self._sets[index]
        if line_address in cache_set:
            cache_set[line_address] = True
            cache_set.move_to_end(line_address)
            self.stats.write_hits += 1
            return CacheAccessResult(hit=True)

        part = self._owner(line_address)
        ddio_lines = self._ddio_lines[index][part]
        writeback = False
        if len(ddio_lines) >= self._ddio_budgets[part]:
            # The owner's DDIO portion of this set is full: evict its own
            # oldest line (never a neighbouring partition's).
            victim = next(
                (line for line in cache_set if line in ddio_lines), None
            )
            if victim is not None:
                writeback = cache_set.pop(victim)
                ddio_lines.discard(victim)
        cache_set[line_address] = True
        ddio_lines.add(line_address)
        self._evict_overflow(index)
        self.stats.write_misses += 1
        if writeback:
            self.stats.writebacks += 1
        return CacheAccessResult(hit=False, writeback_required=bool(writeback), allocated=True)

    # -- host-side priming ----------------------------------------------------------

    def host_touch(self, line_address: int, *, dirty: bool = True) -> None:
        """The host CPU reads/writes a line, installing it in the general LLC."""
        index = self._set_index(line_address)
        cache_set = self._sets[index]
        if line_address in cache_set:
            cache_set.move_to_end(line_address)
            cache_set[line_address] = cache_set[line_address] or dirty
            return
        cache_set[line_address] = dirty
        self._ddio_lines[index][self._owner(line_address)].discard(line_address)
        self._evict_overflow(index)

    def thrash(self) -> None:
        """Empty the cache (the benchmark's default cold-cache preparation)."""
        for cache_set in self._sets:
            cache_set.clear()
        for partitions in self._ddio_lines:
            for ddio in partitions:
                ddio.clear()

    def prepare(self, state: CacheState, window_lines: int) -> None:
        """Prime the cache per the benchmark's cache-state parameter."""
        self.thrash()
        if state is CacheState.COLD:
            return
        for line in range(window_lines):
            if state is CacheState.HOST_WARM:
                self.host_touch(line)
            else:
                self.write(line)

    # -- internals --------------------------------------------------------------------

    def _evict_overflow(self, index: int) -> None:
        cache_set = self._sets[index]
        while len(cache_set) > self.ways:
            victim, dirty = cache_set.popitem(last=False)
            self._ddio_lines[index][self._owner(victim)].discard(victim)
            if dirty:
                self.stats.writebacks += 1

    def resident(self, line_address: int) -> bool:
        """Whether a line is currently cached (test/inspection helper)."""
        return line_address in self._sets[self._set_index(line_address)]

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)


@dataclass
class CacheStats:
    """Hit/miss counters kept by the faithful cache model."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def read_hit_rate(self) -> float:
        """Fraction of device reads served by the cache."""
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def write_hit_rate(self) -> float:
        """Fraction of device writes that found their line resident."""
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 0.0


# ---------------------------------------------------------------------------
# Statistical model
# ---------------------------------------------------------------------------


class StatisticalCache:
    """Occupancy-based cache approximation used for large benchmark windows.

    Rather than tracking every line, the model keeps the probability that a
    uniformly chosen line of the benchmark window is resident, derived from
    the window size, the preparation state and the DDIO capacity:

    * host-warm: resident fraction ``min(1, llc_capacity / window)``;
    * device-warm: resident fraction ``min(1, ddio_capacity / window)``;
    * cold: nothing resident (until device writes allocate lines).

    Device writes allocate lines into the DDIO slice; once the window
    exceeds that slice a write evicts (and must write back) a previously
    allocated dirty line with probability ``ddio_capacity / window``
    approaching one, reproducing the LAT_WRRD behaviour of Figure 7(a).

    :meth:`partition` splits the modelled capacity into per-owner slices
    routed by line address (the statistical counterpart of DDIO way
    partitioning): each owner's residency and write-back probabilities
    are computed against *its* slice and *its* window alone, so a bulk
    neighbour's working set no longer dilutes a small owner's hit
    probability.  Unpartitioned caches behave exactly as before.
    """

    def __init__(
        self,
        llc_bytes: int = DEFAULT_LLC_BYTES,
        *,
        ddio_fraction: float = DEFAULT_DDIO_FRACTION,
        line_bytes: int = CACHELINE_BYTES,
        rng: SimRng | None = None,
        effective_capacity_fraction: float = 0.95,
    ) -> None:
        _check_cache_args(llc_bytes, ddio_fraction)
        if not 0.0 < effective_capacity_fraction <= 1.0:
            raise ValidationError(
                "effective_capacity_fraction must be in (0, 1], got "
                f"{effective_capacity_fraction}"
            )
        self.llc_bytes = llc_bytes
        self.ddio_fraction = ddio_fraction
        self.line_bytes = line_bytes
        self.effective_capacity_fraction = effective_capacity_fraction
        self._rng = rng or SimRng()
        self._random = self._rng.spawn("cache.statistical")
        self._window_lines = 0
        self._resident_fraction = 0.0
        self._writeback_probability = 0.0
        self._partition_shares: tuple[float, ...] | None = None
        self._partition_of: Callable[[int], int] | None = None
        self._partition_resident: list[float] = []
        self._partition_writeback: list[float] = []
        self.stats = CacheStats()

    @property
    def ddio_bytes(self) -> int:
        """Capacity available to DDIO write allocation."""
        return int(self.llc_bytes * self.ddio_fraction)

    @property
    def llc_lines(self) -> int:
        """Usable LLC capacity in cache lines."""
        return int(
            self.llc_bytes * self.effective_capacity_fraction / self.line_bytes
        )

    @property
    def ddio_lines(self) -> int:
        """DDIO slice capacity in cache lines."""
        return max(1, int(self.ddio_bytes / self.line_bytes))

    @property
    def resident_fraction(self) -> float:
        """Probability that a window line is resident (inspection helper)."""
        return self._resident_fraction

    @property
    def partitions(self) -> int:
        """Number of capacity partitions (0 when unpartitioned)."""
        return 0 if self._partition_shares is None else len(self._partition_shares)

    def partition(
        self, shares: Sequence[float], owner: Callable[[int], int]
    ) -> None:
        """Split the modelled capacity into per-owner slices.

        Args:
            shares: relative capacity shares, one per owner (normalised).
            owner: maps a line address to its owner index.

        Partitions start cold; prime each with :meth:`prepare_partition`.
        A later plain :meth:`prepare` returns the model to its single
        shared window.
        """
        self._partition_shares = _check_partition_shares(shares)
        self._partition_of = owner
        count = len(self._partition_shares)
        self._partition_resident = [0.0] * count
        self._partition_writeback = [0.0] * count

    def prepare_partition(
        self, index: int, state: CacheState | str, window_lines: int
    ) -> None:
        """Prime one partition for an owner touching ``window_lines`` lines."""
        if self._partition_shares is None:
            raise ValidationError(
                "partition the cache before preparing a partition"
            )
        if not 0 <= index < len(self._partition_shares):
            raise ValidationError(
                f"partition index must be within "
                f"[0, {len(self._partition_shares)}), got {index}"
            )
        if window_lines <= 0:
            raise ValidationError(
                f"window_lines must be positive, got {window_lines}"
            )
        state = CacheState.from_value(state)
        share = self._partition_shares[index]
        capacity_lines = max(1, int(self.llc_lines * share))
        ddio_lines = max(1, int(self.ddio_lines * share))
        if state is CacheState.COLD:
            resident = 0.0
        elif state is CacheState.HOST_WARM:
            resident = min(1.0, capacity_lines / window_lines)
        else:  # DEVICE_WARM
            resident = min(1.0, ddio_lines / window_lines)
        self._partition_resident[index] = resident
        self._partition_writeback[index] = max(
            0.0, 1.0 - ddio_lines / window_lines
        )

    def prepare(self, state: CacheState, window_lines: int) -> None:
        """Prime the model for a benchmark touching ``window_lines`` lines."""
        if window_lines <= 0:
            raise ValidationError(
                f"window_lines must be positive, got {window_lines}"
            )
        state = CacheState.from_value(state)
        # A plain preparation reverts to the single shared window; the
        # partitioned state is per-benchmark, not per-cache-lifetime.
        self._partition_shares = None
        self._partition_of = None
        self._window_lines = window_lines
        if state is CacheState.COLD:
            self._resident_fraction = 0.0
        elif state is CacheState.HOST_WARM:
            self._resident_fraction = min(1.0, self.llc_lines / window_lines)
        else:  # DEVICE_WARM
            self._resident_fraction = min(1.0, self.ddio_lines / window_lines)
        # Steady-state pressure on the DDIO slice: when the set of lines the
        # device writes does not fit the slice, almost every write allocation
        # evicts a dirty DDIO line that must be written back first (§6.3).
        self._writeback_probability = max(0.0, 1.0 - self.ddio_lines / window_lines)

    def _probabilities(self, line_address: int) -> tuple[float, float]:
        """(resident, writeback) probabilities for a line's owner slice."""
        if self._partition_of is None:
            return self._resident_fraction, self._writeback_probability
        index = self._partition_of(line_address)
        return (
            self._partition_resident[index],
            self._partition_writeback[index],
        )

    def read(self, line_address: int) -> CacheAccessResult:
        """Device DMA read: hit with the owner slice's resident probability."""
        resident, _ = self._probabilities(line_address)
        hit = bool(self._random.random() < resident)
        if hit:
            self.stats.read_hits += 1
        else:
            self.stats.read_misses += 1
        return CacheAccessResult(hit=hit)

    def write(self, line_address: int) -> CacheAccessResult:
        """Device DMA write: resident lines update in place, misses use DDIO."""
        resident, writeback_probability = self._probabilities(line_address)
        hit = bool(self._random.random() < resident)
        if hit:
            self.stats.write_hits += 1
            return CacheAccessResult(hit=True)
        self.stats.write_misses += 1
        # Write allocation into the DDIO slice: when the benchmark window
        # exceeds the slice, allocations evict dirty DDIO lines which must be
        # written back to memory before the new write can complete.
        writeback = bool(self._random.random() < writeback_probability)
        if writeback:
            self.stats.writebacks += 1
        return CacheAccessResult(hit=False, writeback_required=writeback, allocated=True)
