"""System profiles: the Table 1 hosts, expressed as calibrated model parameters.

Every latency or bandwidth constant the paper measures is collected here,
with a pointer to the section it comes from, so the rest of the simulator is
free of magic numbers.  Absolute values are calibrations, not predictions —
the goal is that the *relative* effects the paper reports (cache discount,
IOTLB miss penalty, NUMA adder, E3 tail, per-architecture differences)
reproduce when the benchmarks are run against these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import UnknownProfileError, ValidationError
from ..units import MIB
from .cache import DEFAULT_DDIO_FRACTION
from .devices import DeviceModel, get_device
from .iommu import (
    DEFAULT_IOTLB_ENTRIES,
    DEFAULT_WALK_LATENCY_NS,
    DEFAULT_WALKER_OCCUPANCY_NS,
)
from .noise import HeavyTailNoise, NoiseModel, TightNoise
from .numa import DEFAULT_REMOTE_PENALTY_NS
from .root_complex import RootComplexConfig


@dataclass(frozen=True)
class SystemProfile:
    """One row of Table 1 plus the calibration constants the model needs.

    Attributes:
        name: the identifier the paper uses (e.g. ``"NFP6000-HSW"``).
        cpu: CPU model string.
        architecture: micro-architecture generation.
        sockets: number of populated sockets (2 for the NUMA systems).
        memory_gb: installed memory.
        os_kernel: distribution / kernel version (documentation only).
        adapter: the network adapter installed in this system.
        llc_bytes: last-level cache size (15 MiB everywhere except the
            25 MiB Broadwell system).
        ddio_fraction: share of the LLC available to DDIO write allocation
            (~10 % on all the paper's systems, §6.3).
        base_read_ns: host service time of an LLC-hit DMA read (calibrated
            so the NFP6000-HSW 64 B median lands near the 547 ns of §6.2).
        cache_discount_ns: LLC-hit saving versus DRAM (~70 ns, §6.3).
        writeback_ns: DDIO dirty-eviction penalty (~70 ns, §6.3).
        write_to_read_turnaround_ns: ordering delay of LAT_WRRD.
        per_tlp_ingress_ns: root-complex per-TLP processing occupancy; large
            on the Xeon E3, whose writes never reach 40 Gb/s (§6.2).
        remote_penalty_ns: NUMA interconnect adder (~100 ns, §6.4).
        iotlb_entries: IOTLB capacity (64 inferred in §6.5).
        iommu_walk_ns: page-table walk latency (~330 ns, §6.5).
        iommu_walker_occupancy_ns: walker occupancy per miss, which sets the
            large-window bandwidth collapse (≈70 % for 64 B reads, §6.5).
        noise: latency-noise model (tight for E5, heavy-tailed for E3).
        device_name: which benchmark device is plugged into this system.
    """

    name: str
    cpu: str
    architecture: str
    sockets: int
    memory_gb: int
    os_kernel: str
    adapter: str
    llc_bytes: int = 15 * MIB
    ddio_fraction: float = DEFAULT_DDIO_FRACTION
    base_read_ns: float = 400.0
    cache_discount_ns: float = 70.0
    writeback_ns: float = 70.0
    write_commit_ns: float = 80.0
    write_to_read_turnaround_ns: float = 60.0
    per_tlp_ingress_ns: float = 4.0
    mmio_read_ns: float = 400.0
    remote_penalty_ns: float = DEFAULT_REMOTE_PENALTY_NS
    iotlb_entries: int = DEFAULT_IOTLB_ENTRIES
    iommu_walk_ns: float = DEFAULT_WALK_LATENCY_NS
    iommu_walker_occupancy_ns: float = DEFAULT_WALKER_OCCUPANCY_NS
    noise: NoiseModel = field(default_factory=TightNoise)
    device_name: str = "nfp6000"

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ValidationError(f"sockets must be positive, got {self.sockets}")
        if self.llc_bytes <= 0:
            raise ValidationError(f"llc_bytes must be positive, got {self.llc_bytes}")
        if not 0.0 < self.ddio_fraction <= 1.0:
            raise ValidationError(
                f"ddio_fraction must be in (0, 1], got {self.ddio_fraction}"
            )
        for attr in (
            "base_read_ns",
            "cache_discount_ns",
            "writeback_ns",
            "write_commit_ns",
            "write_to_read_turnaround_ns",
            "per_tlp_ingress_ns",
            "mmio_read_ns",
            "remote_penalty_ns",
            "iommu_walk_ns",
            "iommu_walker_occupancy_ns",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")
        if self.iotlb_entries <= 0:
            raise ValidationError("iotlb_entries must be positive")

    # -- derived views -------------------------------------------------------------

    @property
    def is_numa(self) -> bool:
        """Whether the system has more than one socket."""
        return self.sockets > 1

    @property
    def llc_mib(self) -> float:
        """LLC size in MiB (for Table 1 output)."""
        return self.llc_bytes / MIB

    @property
    def ddio_bytes(self) -> int:
        """Capacity of the DDIO slice of the LLC."""
        return int(self.llc_bytes * self.ddio_fraction)

    def device(self) -> DeviceModel:
        """The benchmark device installed in this system."""
        return get_device(self.device_name)

    def root_complex_config(self) -> RootComplexConfig:
        """Root-complex constants for this host."""
        return RootComplexConfig(
            base_read_ns=self.base_read_ns,
            cache_discount_ns=self.cache_discount_ns,
            write_commit_ns=self.write_commit_ns,
            write_to_read_turnaround_ns=self.write_to_read_turnaround_ns,
            per_tlp_ingress_ns=self.per_tlp_ingress_ns,
            mmio_read_ns=self.mmio_read_ns,
        )

    def with_(self, **changes: object) -> "SystemProfile":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def table1_row(self) -> dict[str, str]:
        """This profile formatted as its Table 1 row."""
        return {
            "Name": self.name,
            "CPU": self.cpu,
            "NUMA": f"{self.sockets}-way" if self.is_numa else "no",
            "Architecture": self.architecture,
            "Memory": f"{self.memory_gb}GB",
            "OS/Kernel": self.os_kernel,
            "Network Adapter": self.adapter,
            "LLC": f"{self.llc_mib:.0f}MB",
        }


# ---------------------------------------------------------------------------
# The Table 1 systems
# ---------------------------------------------------------------------------

NFP6000_BDW = SystemProfile(
    name="NFP6000-BDW",
    cpu="Intel Xeon E5-2630v4 2.2GHz",
    architecture="Broadwell",
    sockets=2,
    memory_gb=128,
    os_kernel="Ubuntu 3.19.0-69",
    adapter="NFP6000 1.2GHz",
    llc_bytes=25 * MIB,
    base_read_ns=430.0,
    device_name="nfp6000",
)

NETFPGA_HSW = SystemProfile(
    name="NetFPGA-HSW",
    cpu="Intel Xeon E5-2637v3 3.5GHz",
    architecture="Haswell",
    sockets=1,
    memory_gb=64,
    os_kernel="Ubuntu 3.19.0-43",
    adapter="NetFPGA-SUME",
    llc_bytes=15 * MIB,
    base_read_ns=390.0,
    device_name="netfpga",
)

NFP6000_HSW = SystemProfile(
    name="NFP6000-HSW",
    cpu="Intel Xeon E5-2637v3 3.5GHz",
    architecture="Haswell",
    sockets=1,
    memory_gb=64,
    os_kernel="Ubuntu 3.19.0-43",
    adapter="NFP6000 1.2GHz",
    llc_bytes=15 * MIB,
    base_read_ns=390.0,
    device_name="nfp6000",
)

NFP6000_HSW_E3 = SystemProfile(
    name="NFP6000-HSW-E3",
    cpu="Intel Xeon E3-1226v3 3.3GHz",
    architecture="Haswell",
    sockets=1,
    memory_gb=16,
    os_kernel="Ubuntu 4.4.0-31",
    adapter="NFP6000 1.2GHz",
    llc_bytes=15 * MIB,
    # The E3 uncore starts servicing reads slightly faster (minimum latency
    # 493 ns vs 520 ns on the E5, §6.2) but queues badly and stalls.
    base_read_ns=360.0,
    per_tlp_ingress_ns=52.0,
    noise=HeavyTailNoise(),
    device_name="nfp6000",
)

NFP6000_IB = SystemProfile(
    name="NFP6000-IB",
    cpu="Intel Xeon E5-2620v2 2.1GHz",
    architecture="Ivy Bridge",
    sockets=2,
    memory_gb=32,
    os_kernel="Ubuntu 3.19.0-30",
    adapter="NFP6000 1.2GHz",
    llc_bytes=15 * MIB,
    base_read_ns=450.0,
    device_name="nfp6000",
)

NFP6000_SNB = SystemProfile(
    name="NFP6000-SNB",
    cpu="Intel Xeon E5-2630 2.3GHz",
    architecture="Sandy Bridge",
    sockets=1,
    memory_gb=16,
    os_kernel="Ubuntu 3.19.0-30",
    adapter="NFP6000 1.2GHz",
    llc_bytes=15 * MIB,
    base_read_ns=440.0,
    device_name="nfp6000",
)

#: All Table 1 systems in the order the paper lists them.
TABLE1_PROFILES: tuple[SystemProfile, ...] = (
    NFP6000_BDW,
    NETFPGA_HSW,
    NFP6000_HSW,
    NFP6000_HSW_E3,
    NFP6000_IB,
    NFP6000_SNB,
)

PROFILE_REGISTRY: dict[str, SystemProfile] = {
    profile.name.lower(): profile for profile in TABLE1_PROFILES
}


def get_profile(name: str) -> SystemProfile:
    """Look up a system profile by its Table 1 name (case-insensitive)."""
    key = name.strip().lower()
    if key not in PROFILE_REGISTRY:
        raise UnknownProfileError(name, [p.name for p in TABLE1_PROFILES])
    return PROFILE_REGISTRY[key]


def profile_names() -> list[str]:
    """Names of all registered profiles, in Table 1 order."""
    return [profile.name for profile in TABLE1_PROFILES]
