"""PCIe root complex model.

The root complex is where a PCIe transaction meets the host: it arbitrates
ingress TLPs, translates addresses through the IOMMU when one is enabled,
looks up the LLC (allocating via DDIO for writes), reaches out to DRAM on a
miss, and traverses the socket interconnect when the target buffer lives on
a remote NUMA node.  The paper's central point is that this composition —
not the PCIe wire protocol — explains most of the latency and much of the
bandwidth behaviour devices observe; this class is therefore the heart of
the simulated substrate.

The model composes:

* a calibrated base service time (``base_read_ns``) covering the root
  complex pipeline plus an LLC hit,
* the memory model's DRAM penalty when the LLC lookup misses,
* the DDIO write-allocation behaviour including dirty write-backs,
* the IOMMU's IOTLB hit/miss latency and page-walker occupancy,
* the NUMA penalty for remote buffers,
* a per-profile noise model (tight for Xeon E5, heavy-tailed for Xeon E3).

It returns per-transaction :class:`HostAccess` records; the consumers add
link serialisation and resource contention on top: the DMA engine model in
:mod:`repro.sim.dma` (micro-benchmarks) and, via the
:mod:`repro.sim.nichost` coupling, the packet-level NIC datapath in
:mod:`repro.sim.nicsim`, whose descriptor and payload DMAs are all serviced
here when a host is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..units import CACHELINE_BYTES
from .cache import CacheInterface, CacheState, StatisticalCache
from .iommu import Iommu
from .memory import MemorySystem
from .noise import NoiseModel, TightNoise
from .numa import NumaTopology
from .rng import SimRng


@dataclass(frozen=True, slots=True)
class HostAccess:
    """Host-side outcome of one DMA transaction (no link serialisation).

    Attributes:
        latency_ns: time from the transaction reaching the root complex to
            the completion (read) or commit point (write) being available.
        walker_occupancy_ns: time the IOMMU page walker was held; the DMA
            engine model serialises concurrent transactions on this.
        ingress_occupancy_ns: time the root-complex ingress pipeline was
            held by this transaction (bounds the transaction rate on hosts
            with slow uncore implementations such as the Xeon E3).
        cache_hit: whether the (first) target line was LLC resident.
        iotlb_hit: whether the IOMMU translation hit the IOTLB (true when
            the IOMMU is disabled).
        writeback: whether a dirty line had to be flushed first.
        remote: whether the target buffer was on a remote NUMA node.
    """

    latency_ns: float
    walker_occupancy_ns: float = 0.0
    ingress_occupancy_ns: float = 0.0
    cache_hit: bool = False
    iotlb_hit: bool = True
    writeback: bool = False
    remote: bool = False


@dataclass(frozen=True)
class RootComplexConfig:
    """Calibrated constants of a host's root complex.

    Attributes:
        base_read_ns: host service time for a DMA read that hits the LLC
            (root-complex pipeline + uncore + LLC).
        cache_discount_ns: latency saved by an LLC hit versus DRAM (~70 ns).
            Stored for reference; the DRAM penalty itself comes from the
            memory model so both stay consistent.
        write_commit_ns: host-side time to accept and commit a posted write.
        write_to_read_turnaround_ns: extra delay before a read that follows
            a write to the same address completes (PCIe ordering).
        per_tlp_ingress_ns: root-complex ingress occupancy per TLP; the
            transaction-rate ceiling of the host (notably worse on Xeon E3).
        mmio_read_ns: host round-trip component of a driver register read.
    """

    base_read_ns: float = 430.0
    cache_discount_ns: float = 70.0
    write_commit_ns: float = 80.0
    write_to_read_turnaround_ns: float = 60.0
    per_tlp_ingress_ns: float = 4.0
    mmio_read_ns: float = 400.0

    def __post_init__(self) -> None:
        for attr in (
            "base_read_ns",
            "cache_discount_ns",
            "write_commit_ns",
            "write_to_read_turnaround_ns",
            "per_tlp_ingress_ns",
            "mmio_read_ns",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")


class RootComplex:
    """Behavioural root complex combining cache, IOMMU, NUMA and memory models."""

    def __init__(
        self,
        config: RootComplexConfig | None = None,
        *,
        cache: CacheInterface | None = None,
        iommu: Iommu | None = None,
        numa: NumaTopology | None = None,
        memory: MemorySystem | None = None,
        noise: NoiseModel | None = None,
        rng: SimRng | None = None,
    ) -> None:
        self.config = config or RootComplexConfig()
        self.rng = rng or SimRng()
        self.cache = cache if cache is not None else StatisticalCache(rng=self.rng)
        self.iommu = iommu or Iommu()
        self.numa = numa or NumaTopology.single_socket()
        self.memory = memory or MemorySystem()
        self.noise = noise or TightNoise()
        self._noise_rng = self.rng.spawn("root_complex.noise")

    # -- benchmark preparation -----------------------------------------------------

    def prepare_cache(self, state: CacheState | str, window_lines: int) -> None:
        """Prime the LLC model for a benchmark window (cold / host / device warm)."""
        self.cache.prepare(CacheState.from_value(state), window_lines)

    # -- individual accesses ----------------------------------------------------------

    def read(self, address: int, size: int, *, buffer_node: int = 0) -> HostAccess:
        """Service a DMA read of ``size`` bytes at ``address``."""
        self._check_access(address, size)
        translation = self.iommu.translate(address)
        line = address // CACHELINE_BYTES
        cache_result = self.cache.read(line)
        self._touch_remaining_lines(address, size, is_write=False)
        remote = not self.numa.is_local(buffer_node)
        latency = (
            self.config.base_read_ns
            + self.memory.read_penalty_ns(cache_hit=cache_result.hit)
            + translation.latency_ns
            + self.numa.access_penalty_ns(buffer_node)
            + self._sample_noise()
        )
        return HostAccess(
            latency_ns=latency,
            walker_occupancy_ns=translation.walker_occupancy_ns,
            ingress_occupancy_ns=self._ingress_occupancy(size),
            cache_hit=cache_result.hit,
            iotlb_hit=translation.hit,
            remote=remote,
        )

    def write(self, address: int, size: int, *, buffer_node: int = 0) -> HostAccess:
        """Accept a posted DMA write of ``size`` bytes at ``address``.

        The returned latency is the host-side commit time; because writes are
        posted the device never waits for it, but it matters for the ordering
        of a subsequent read (``LAT_WRRD``) and for DDIO write-back effects.
        """
        self._check_access(address, size)
        translation = self.iommu.translate(address)
        line = address // CACHELINE_BYTES
        cache_result = self.cache.write(line)
        self._touch_remaining_lines(address, size, is_write=True)
        remote = not self.numa.is_local(buffer_node)
        latency = (
            self.config.write_commit_ns
            + self.memory.write_allocation_penalty_ns(
                writeback_required=cache_result.writeback_required
            )
            + translation.latency_ns
            + self.numa.access_penalty_ns(buffer_node)
            + self._sample_noise()
        )
        return HostAccess(
            latency_ns=latency,
            walker_occupancy_ns=translation.walker_occupancy_ns,
            ingress_occupancy_ns=self._ingress_occupancy(size),
            cache_hit=cache_result.hit,
            iotlb_hit=translation.hit,
            writeback=cache_result.writeback_required,
            remote=remote,
        )

    def write_read(
        self, address: int, size: int, *, buffer_node: int = 0
    ) -> HostAccess:
        """Service a posted write immediately followed by a read of the same address.

        PCIe ordering forces the root complex to complete the write before
        the read.  The read always finds the just-written data in the LLC
        (it was either already resident or allocated by DDIO), so its DRAM
        penalty is waived; the measurable cost of the write is any DDIO
        write-back it triggered plus the ordering turnaround.
        """
        self._check_access(address, size)
        write_access = self.write(address, size, buffer_node=buffer_node)
        read_translation = self.iommu.translate(address)
        read_latency = (
            self.config.base_read_ns
            + read_translation.latency_ns
            + self.config.write_to_read_turnaround_ns
            + self._sample_noise()
        )
        write_visible = (
            self.memory.write_allocation_penalty_ns(
                writeback_required=write_access.writeback
            )
            + self.numa.access_penalty_ns(buffer_node)
        )
        total = write_visible + read_latency
        return HostAccess(
            latency_ns=total,
            walker_occupancy_ns=write_access.walker_occupancy_ns
            + read_translation.walker_occupancy_ns,
            ingress_occupancy_ns=2 * self._ingress_occupancy(size),
            cache_hit=write_access.cache_hit,
            iotlb_hit=write_access.iotlb_hit and read_translation.hit,
            writeback=write_access.writeback,
            remote=write_access.remote,
        )

    # -- helpers -------------------------------------------------------------------------

    def _sample_noise(self) -> float:
        return float(self.noise.sample(self._noise_rng, 1)[0])

    def _ingress_occupancy(self, size: int) -> float:
        tlps = max(1, -(-size // 256))
        return self.config.per_tlp_ingress_ns * tlps

    def _touch_remaining_lines(self, address: int, size: int, *, is_write: bool) -> None:
        """Keep line-accurate cache models consistent for multi-line transfers."""
        first_line = address // CACHELINE_BYTES
        last_line = (address + max(size, 1) - 1) // CACHELINE_BYTES
        if last_line == first_line:
            return
        # Only the faithful model benefits from this; the statistical model
        # draws residency per transaction and extra touches would skew its
        # counters.
        if isinstance(self.cache, StatisticalCache):
            return
        for line in range(first_line + 1, last_line + 1):
            if is_write:
                self.cache.write(line)
            else:
                self.cache.read(line)

    @staticmethod
    def _check_access(address: int, size: int) -> None:
        if address < 0:
            raise ValidationError(f"address must be non-negative, got {address}")
        if size <= 0:
            raise ValidationError(f"size must be positive, got {size}")
