"""Host system façade: build a complete simulated host from a profile.

:class:`HostSystem` wires a :class:`~repro.sim.profiles.SystemProfile` into
the concrete component models (cache, IOMMU, NUMA, memory, root complex),
allocates benchmark buffers and prepares cache state — the role the kernel
drivers and control programs play in the real pcie-bench (§5.3, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..units import CACHELINE_BYTES, KIB, MIB
from .cache import CacheInterface, CacheState, SetAssociativeCache, StatisticalCache
from .devices import DeviceModel
from .hostbuffer import HostBuffer
from .iommu import Iommu, IommuConfig
from .memory import MemoryConfig, MemorySystem
from .numa import NumaTopology
from .profiles import SystemProfile, get_profile
from .rng import DEFAULT_SEED, SimRng
from .root_complex import RootComplex


#: Windows at or below this many cache lines use the line-accurate cache
#: model; larger windows use the statistical occupancy model (warming a
#: 64 MiB window line by line costs more time than it adds fidelity).
FAITHFUL_CACHE_LINE_LIMIT = 64 * KIB // CACHELINE_BYTES


@dataclass
class HostSystem:
    """A simulated host: profile + component models + benchmark buffers."""

    profile: SystemProfile
    root_complex: RootComplex
    numa: NumaTopology
    iommu: Iommu
    rng: SimRng

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_profile(
        cls,
        profile: SystemProfile | str,
        *,
        iommu_enabled: bool = False,
        iommu_page_size: int = 4 * KIB,
        seed: int = DEFAULT_SEED,
        cache_model: str = "auto",
    ) -> "HostSystem":
        """Build a host system from a Table 1 profile (or its name).

        Args:
            profile: a :class:`SystemProfile` or its name, e.g. ``"NFP6000-HSW"``.
            iommu_enabled: whether DMA addresses are translated
                (``intel_iommu=on``); disabled by default as in the paper.
            iommu_page_size: IOVA page size; 4 KiB replicates the paper's
                ``sp_off`` setting, 2 MiB models super-pages.
            seed: seed for all stochastic behaviour.
            cache_model: ``"statistical"``, ``"faithful"`` or ``"auto"``
                (the default; picks per benchmark window size).
        """
        if isinstance(profile, str):
            profile = get_profile(profile)
        if cache_model not in ("auto", "statistical", "faithful"):
            raise ValidationError(
                "cache_model must be 'auto', 'statistical' or 'faithful', "
                f"got {cache_model!r}"
            )
        rng = SimRng(seed)
        numa = (
            NumaTopology.dual_socket(remote_penalty_ns=profile.remote_penalty_ns)
            if profile.is_numa
            else NumaTopology.single_socket()
        )
        iommu = Iommu(
            IommuConfig(
                enabled=iommu_enabled,
                page_size=iommu_page_size,
                iotlb_entries=profile.iotlb_entries,
                walk_latency_ns=profile.iommu_walk_ns,
                walker_occupancy_ns=profile.iommu_walker_occupancy_ns,
            )
        )
        memory = MemorySystem(
            MemoryConfig(
                dram_access_ns=profile.cache_discount_ns,
                writeback_ns=profile.writeback_ns,
            )
        )
        cache = _build_cache(profile, cache_model, rng)
        root_complex = RootComplex(
            profile.root_complex_config(),
            cache=cache,
            iommu=iommu,
            numa=numa,
            memory=memory,
            noise=profile.noise,
            rng=rng,
        )
        host = cls(
            profile=profile,
            root_complex=root_complex,
            numa=numa,
            iommu=iommu,
            rng=rng,
        )
        host._cache_model = cache_model  # type: ignore[attr-defined]
        return host

    # -- buffers ---------------------------------------------------------------------

    def allocate_buffer(
        self,
        window_size: int,
        transfer_size: int,
        *,
        offset: int = 0,
        node: str | int = "local",
        page_size: int | None = None,
    ) -> HostBuffer:
        """Allocate a benchmark host buffer.

        Args:
            window_size: bytes accessed repeatedly by the benchmark.
            transfer_size: bytes per DMA.
            offset: starting offset within a cache line.
            node: ``"local"`` (the device's node), ``"remote"`` (the other
                socket) or an explicit NUMA node id.
            page_size: backing page size; defaults to the IOMMU's page size
                when translation is enabled, 4 KiB otherwise.
        """
        numa_node = self._resolve_node(node)
        resolved_page = page_size or self.iommu.config.page_size
        return HostBuffer(
            window_size=window_size,
            transfer_size=transfer_size,
            offset=offset,
            numa_node=numa_node,
            page_size=resolved_page,
        )

    def _resolve_node(self, node: str | int) -> int:
        if isinstance(node, int):
            self.numa.validate_node(node)
            return node
        text = str(node).strip().lower()
        if text == "local":
            return self.numa.device_node
        if text == "remote":
            return self.numa.remote_node()
        raise ValidationError(
            f"node must be 'local', 'remote' or a node id, got {node!r}"
        )

    # -- benchmark preparation ----------------------------------------------------------

    def prepare(self, buffer: HostBuffer, cache_state: CacheState | str) -> None:
        """Prime cache (and reset IOMMU statistics) for a benchmark run.

        The cache model may be swapped between the line-accurate and the
        statistical implementation depending on the window size when the
        host was built with ``cache_model="auto"``.
        """
        state = CacheState.from_value(cache_state)
        mode = getattr(self, "_cache_model", "auto")
        if mode == "auto":
            wanted_faithful = buffer.window_cachelines <= FAITHFUL_CACHE_LINE_LIMIT
            currently_faithful = isinstance(
                self.root_complex.cache, SetAssociativeCache
            )
            if wanted_faithful != currently_faithful:
                self.root_complex.cache = _build_cache(
                    self.profile,
                    "faithful" if wanted_faithful else "statistical",
                    self.rng,
                )
        self.root_complex.prepare_cache(state, buffer.window_cachelines)
        self.iommu.invalidate()
        # The driver has just mapped (and the warming pass touched) the
        # buffer, so translations for as much of the window as the IOTLB can
        # hold start out cached; misses during the measurement then reflect
        # steady-state capacity behaviour rather than a cold-start transient.
        if self.iommu.enabled:
            page_size = self.iommu.config.page_size
            pages_to_warm = min(
                buffer.window_pages, self.iommu.config.iotlb_entries
            )
            self.iommu.warm(
                [
                    buffer.base_address + index * page_size
                    for index in range(pages_to_warm)
                ]
            )
        self.iommu.reset_stats()

    # -- convenience ---------------------------------------------------------------------

    @property
    def device(self) -> DeviceModel:
        """The benchmark device installed in this system (from the profile)."""
        return self.profile.device()

    @property
    def llc_bytes(self) -> int:
        """LLC size of this host."""
        return self.profile.llc_bytes

    @property
    def ddio_bytes(self) -> int:
        """DDIO slice capacity of this host."""
        return self.profile.ddio_bytes

    def describe(self) -> dict[str, object]:
        """Summary of the host configuration (for reports and debugging)."""
        return {
            "profile": self.profile.name,
            "cpu": self.profile.cpu,
            "architecture": self.profile.architecture,
            "sockets": self.profile.sockets,
            "llc_mib": round(self.profile.llc_mib, 1),
            "ddio_mib": round(self.ddio_bytes / MIB, 2),
            "iommu_enabled": self.iommu.enabled,
            "iommu_page_size": self.iommu.config.page_size,
            "device": self.device.name,
            "seed": self.rng.seed,
        }


def _build_cache(
    profile: SystemProfile, cache_model: str, rng: SimRng
) -> CacheInterface:
    """Create the requested cache implementation for a profile."""
    if cache_model == "faithful":
        return SetAssociativeCache(
            profile.llc_bytes, ddio_fraction=profile.ddio_fraction
        )
    return StatisticalCache(
        profile.llc_bytes, ddio_fraction=profile.ddio_fraction, rng=rng
    )
