"""Deterministic random number helpers for the simulator.

All stochastic behaviour in the simulation (access patterns, latency noise,
power-management stalls) is driven through :class:`SimRng` so that every
benchmark run is reproducible from a single seed, and so sub-components can
derive independent streams without correlating with each other.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import ValidationError

#: Seed used throughout the test-suite and the experiment drivers unless the
#: caller overrides it.
DEFAULT_SEED = 0x9C1E_BE9C


class SimRng:
    """A seeded random source with named, independent sub-streams.

    Wrapping :class:`numpy.random.Generator` keeps the simulator honest about
    where randomness enters, and `spawn(name)` hands out decorrelated child
    generators so, e.g., the access-pattern stream does not perturb the
    latency-noise stream when one component draws more numbers than before.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ValidationError(f"seed must be an integer, got {seed!r}")
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._generator = np.random.Generator(np.random.PCG64(self._root))
        self._children: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The root generator (use sparingly; prefer named sub-streams)."""
        return self._generator

    def spawn(self, name: str) -> np.random.Generator:
        """Return a generator for the named sub-stream, creating it on first use.

        The same name always maps to the same stream for a given seed, so the
        order in which components ask for their streams does not matter.
        """
        if name not in self._children:
            # zlib.crc32 rather than hash(): string hashes are salted per
            # interpreter process (PYTHONHASHSEED), which would make the
            # "same seed, same stream" guarantee false across invocations
            # and across process-pool workers.
            child_seed = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")) & 0xFFFF_FFFF,),
            )
            self._children[name] = np.random.Generator(np.random.PCG64(child_seed))
        return self._children[name]

    # -- convenience draws -------------------------------------------------------

    def uniform_indices(self, name: str, count: int, upper: int) -> np.ndarray:
        """``count`` uniform integers in ``[0, upper)`` from the named stream."""
        if upper <= 0:
            raise ValidationError(f"upper bound must be positive, got {upper}")
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        return self.spawn(name).integers(0, upper, size=count, dtype=np.int64)

    def gaussian(self, name: str, mean: float, sigma: float, count: int) -> np.ndarray:
        """``count`` normal draws, truncated below at zero."""
        draws = self.spawn(name).normal(mean, sigma, size=count)
        return np.clip(draws, 0.0, None)

    def exponential(self, name: str, scale: float, count: int) -> np.ndarray:
        """``count`` exponential draws with the given scale (mean)."""
        return self.spawn(name).exponential(scale, size=count)

    def bernoulli(self, name: str, probability: float, count: int) -> np.ndarray:
        """``count`` boolean draws with the given success probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(
                f"probability must be within [0, 1], got {probability}"
            )
        return self.spawn(name).random(count) < probability
