"""Shared-host fabric: several NIC datapaths contending on one host.

The paper's §7 speculates that the host side of PCIe — root-complex
ingress, the IOMMU page walker, the DDIO slice of the LLC — becomes a
contended and potentially *unfair* bottleneck once several devices share
it.  Every earlier layer of this reproduction models a single device with
a private host; this module supplies the missing multi-device substrate:

* :class:`SharedHost` owns exactly one profile-built
  :class:`~repro.sim.host.HostSystem` (root complex, LLC/DDIO cache,
  IOMMU, NUMA, memory, noise) plus one descriptor-side root complex, and
  binds N per-device :class:`~repro.sim.nichost.HostCoupling` instances
  to it.  Devices keep private buffer regions (offset by
  :data:`~repro.sim.nichost.DEVICE_ADDRESS_STRIDE` so translations never
  alias) but genuinely contend on the shared cache residency, the shared
  IOTLB and the shared memory system: cache and IOTLB warming happen here,
  over the *aggregate* working set of all devices.

* A PCIe switch / root-port **arbitration topology**: the root-complex
  ingress pipeline and the IOMMU page walker are arbitrated through a
  compiled :class:`~repro.sim.topology.FabricTopology` — a tree of
  :class:`~repro.sim.engine.ArbitratedResource` nodes (devices → N-port
  switches → root port, arbitrary depth) where arbitration composes level
  by level.  Every node applies the configured scheme — ``fcfs`` (the
  un-arbitrated baseline), ``rr`` (round-robin), ``wrr`` (weighted fair
  service), ``age`` (weighted aging / deadline-style) or ``sliced``
  (preemptible wrr quanta that bound how long a victim can wait behind a
  bulk grant).  The default topology is flat (every device directly on
  the root port), which compiles to the single arbitration level PR 4
  hard-wired and reproduces it bit for bit.

* **Per-device DDIO way partitioning** (``FabricConfig.ddio_partition``):
  instead of one aggregate cache residency that lets a bulk neighbour
  dilute everyone's hit probability, each device can own a slice of the
  LLC/DDIO capacity (routed by its address region), so its payload window
  *and its descriptor rings* keep their solo hit rates no matter what the
  neighbours do.  In the shared (unpartitioned) regime, multi-device runs
  model the aggregate payload pressure squeezing the descriptor rings out
  of the LLC — the eviction effect partitioning removes.

* :class:`FabricSimulator` runs N independent
  :class:`~repro.sim.nicsim.NicDatapathSimulator`-style devices — each
  with its own links, rings, queues, tag pool, workload and RNG streams —
  inside **one** discrete-event loop, so their DMAs interleave on the
  shared host in true time order.

Degenerate-case contract: a fabric with a *single* device takes the exact
code path of today's :class:`~repro.sim.nicsim.NicDatapathSimulator` run
(plain ``SerialResource`` ingress/walker, no arbitration indirection, the
historical RNG stream names) and reproduces the single-device golden
records bit for bit.  The arbitration layer only engages with two or more
devices, where there is something to arbitrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from functools import partial

from ..control import (
    CONTROL_POLICIES,
    DEFAULT_CONTROL_WINDOW_NS,
    ControlAction,
    ControlRuntime,
    RssSteering,
    build_controller,
    identity_table,
)
from ..core.config import PAPER_DEFAULT_CONFIG, PCIeConfig
from ..core.nic import NicModel, model_by_name
from ..errors import ValidationError
from ..obs.metrics import MetricsRegistry, metric_segment
from ..obs.trace import ARB_PREFIX, STAGE_WALKER, Tracer
from ..units import CACHELINE_BYTES, KIB, MIB
from ..workloads import Workload, rss_buckets, rss_queues
from .cache import (
    CacheState,
    CacheStats,
    SetAssociativeCache,
    StatisticalCache,
)
from .engine import (
    ARBITER_SCHEMES,
    WEIGHTED_SCHEMES,
    DEFAULT_QUANTUM_NS,
    EngineProfile,
    EventLoop,
    SerialResource,
    TagPool,
)
from .host import HostSystem
from .nichost import (
    _DESCRIPTOR_SEED_SALT,
    DEVICE_ADDRESS_STRIDE,
    HostCoupling,
    NicHostConfig,
)
from .nicsim import (
    DmaTagStats,
    NicSimConfig,
    NicSimResult,
    _Datapath,
    _direction_result,
    _finalise_metrics,
    _install_metrics_sampler,
    _streaming_warmup_threshold,
    _WarmupGate,
)
from .profiles import get_profile
from .rng import DEFAULT_SEED, SimRng
from .root_complex import RootComplex
from .topology import CompiledTopology, FabricTopology, compile_topology


@dataclass(frozen=True)
class FabricConfig:
    """The host and arbitration settings every device shares.

    Attributes:
        system: Table 1 profile supplying the shared root complex, cache,
            IOMMU, NUMA and noise calibrations.
        iommu_enabled / iommu_page_size: shared IOMMU settings (all DMAs
            of all devices translate through one IOTLB and one walker).
        arbiter: arbitration scheme applied at every fabric node:
            ``"fcfs"``, ``"rr"``, ``"wrr"``, ``"age"`` or ``"sliced"``
            (see :class:`~repro.sim.engine.ArbitratedResource`).
        weights: per-device service weights for the weighted schemes
            (``wrr``/``age``/``sliced``; defaults to equal weights);
            rejected by the unweighted ones.  Switch ports compete at
            their parent with their subtree's summed weight.
        topology: the fabric tree (see
            :class:`~repro.sim.topology.FabricTopology`; a spec string is
            parsed).  ``None`` is the flat PR 4 topology: every device
            directly on the root port.
        quantum_ns: preemptible service quantum of the ``"sliced"``
            scheme (defaults to
            :data:`~repro.sim.engine.DEFAULT_QUANTUM_NS`); rejected by
            the other schemes.
        ddio_partition: per-device DDIO/LLC capacity shares.  ``None``
            keeps the PR 4 behaviour (one shared residency over the
            aggregate working set); a tuple gives every device a private
            slice of the cache model, so a bulk neighbour can no longer
            evict a victim's payload window or descriptor rings.
        cache_model: ``"statistical"`` (the default, the fast
            occupancy-probability model every earlier revision used) or
            ``"faithful"`` — the line-accurate
            :class:`~repro.sim.cache.SetAssociativeCache`, warmed over
            each device's real address regions; with ``ddio_partition``
            this is true per-owner DDIO *way* budgets whose evictions
            never touch a neighbour's lines.  O(window lines) to warm, so
            best with windows of a few MiB or less.
        controller: closed-loop control policy retuning the QoS knobs
            mid-run — ``"static"`` (the default: no control plane at all,
            bit-identical to every earlier revision), ``"threshold"``
            (reactive with hysteresis) or ``"aimd"`` (see
            :mod:`repro.control.policies`).
        control_window_ns: the controller's observation/actuation window
            in simulated nanoseconds (defaults to
            :data:`~repro.control.runtime.DEFAULT_CONTROL_WINDOW_NS`);
            rejected with the ``"static"`` controller, which never ticks.
    """

    system: str = "NFP6000-HSW"
    iommu_enabled: bool = False
    iommu_page_size: int = 4 * KIB
    arbiter: str = "fcfs"
    weights: tuple[float, ...] | None = None
    topology: FabricTopology | str | None = None
    quantum_ns: float | None = None
    ddio_partition: tuple[float, ...] | None = None
    cache_model: str = "statistical"
    controller: str = "static"
    control_window_ns: float | None = None

    def __post_init__(self) -> None:
        profile = get_profile(self.system)  # raises on unknown profiles
        object.__setattr__(self, "system", profile.name)
        if self.arbiter not in ARBITER_SCHEMES:
            raise ValidationError(
                f"unknown arbitration scheme {self.arbiter!r}; "
                f"valid: {', '.join(ARBITER_SCHEMES)}"
            )
        if self.weights is not None:
            if self.arbiter not in WEIGHTED_SCHEMES:
                raise ValidationError(
                    f"arbitration weights require a weighted scheme "
                    f"({', '.join(WEIGHTED_SCHEMES)}); the "
                    f"{self.arbiter!r} scheme ignores them"
                )
            weights = tuple(float(weight) for weight in self.weights)
            if any(weight <= 0 for weight in weights):
                raise ValidationError(
                    f"arbitration weights must be positive, got {weights}"
                )
            object.__setattr__(self, "weights", weights)
        if isinstance(self.topology, str):
            object.__setattr__(
                self, "topology", FabricTopology.parse(self.topology)
            )
        if self.arbiter == "sliced":
            quantum = (
                DEFAULT_QUANTUM_NS if self.quantum_ns is None else float(self.quantum_ns)
            )
            if quantum <= 0:
                raise ValidationError(
                    f"quantum_ns must be positive, got {quantum}"
                )
            object.__setattr__(self, "quantum_ns", quantum)
        elif self.quantum_ns is not None:
            raise ValidationError(
                "quantum_ns only applies to the sliced arbiter, not "
                f"{self.arbiter!r}"
            )
        if self.ddio_partition is not None:
            shares = tuple(float(share) for share in self.ddio_partition)
            if any(share <= 0 for share in shares):
                raise ValidationError(
                    f"ddio_partition shares must be positive, got {shares}"
                )
            object.__setattr__(self, "ddio_partition", shares)
        if self.cache_model not in ("statistical", "faithful"):
            raise ValidationError(
                "cache_model must be 'statistical' or 'faithful', got "
                f"{self.cache_model!r}"
            )
        if self.controller not in CONTROL_POLICIES:
            raise ValidationError(
                f"unknown controller {self.controller!r}; "
                f"valid: {', '.join(CONTROL_POLICIES)}"
            )
        if self.control_window_ns is not None:
            if self.controller == "static":
                raise ValidationError(
                    "control_window_ns only applies to an active "
                    "controller; the 'static' policy never ticks"
                )
            window = float(self.control_window_ns)
            if window <= 0:
                raise ValidationError(
                    f"control_window_ns must be positive, got {window}"
                )
            object.__setattr__(self, "control_window_ns", window)


@dataclass(frozen=True)
class FabricDevice:
    """One NIC device attached to the shared host.

    Mirrors the per-device half of a
    :class:`~repro.sim.nicsim.NicSimConfig` plus the buffer-placement half
    of a :class:`~repro.sim.nichost.NicHostConfig`; the host half lives in
    :class:`FabricConfig`, shared by construction.

    Attributes:
        workload: the prepared traffic description this device replays.
        model: NIC/driver model (name or instance).
        packets: packets simulated per direction for this device.
        name: label used in results (defaults to ``dev{i}``).
        ring_depth / rx_backpressure / num_queues / dma_tags: the datapath
            knobs of :class:`~repro.sim.nicsim.NicSimConfig`.
        payload_window / payload_cache_state / payload_placement: this
            device's buffer working set on the shared host.
        seed: workload/RSS seed for this device; ``None`` inherits the
            fabric run seed.
        retain_samples: per-packet sample retention
            (:attr:`~repro.sim.nicsim.NicSimConfig.retain_samples`);
            fleet runs set this false so per-device latency streams
            through an O(1)-memory sketch.
        rss_table: explicit RSS indirection table for multi-queue
            devices (``table[hash % len]`` picks the queue).  ``None``
            keeps direct ``hash % num_queues`` steering.  An active
            controller starts from this table (or the equivalent
            identity table) and may rewrite it mid-run.
    """

    workload: Workload
    model: NicModel | str = "dpdk"
    packets: int = 4000
    name: str = ""
    ring_depth: int = 512
    rx_backpressure: bool = False
    num_queues: int = 1
    dma_tags: int | None = None
    payload_window: int = 4 * MIB
    payload_cache_state: str = "host_warm"
    payload_placement: str = "local"
    seed: int | None = None
    retain_samples: bool = True
    rss_table: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "model",
            model_by_name(self.model) if isinstance(self.model, str) else self.model,
        )
        if self.packets <= 0:
            raise ValidationError(f"packets must be positive, got {self.packets}")
        if self.rss_table is not None:
            if self.num_queues <= 1:
                raise ValidationError(
                    "an RSS indirection table needs multiple queues "
                    f"(num_queues={self.num_queues})"
                )
            table = tuple(int(entry) for entry in self.rss_table)
            if not table:
                raise ValidationError("rss_table must not be empty")
            for entry in table:
                if not 0 <= entry < self.num_queues:
                    raise ValidationError(
                        f"rss_table entries must be queue indices in "
                        f"[0, {self.num_queues}), got {entry}"
                    )
            object.__setattr__(self, "rss_table", table)

    def host_config(self, fabric: FabricConfig) -> NicHostConfig:
        """This device's buffer layout bound to the fabric's shared host."""
        return NicHostConfig(
            system=fabric.system,
            iommu_enabled=fabric.iommu_enabled,
            iommu_page_size=fabric.iommu_page_size,
            payload_window=self.payload_window,
            payload_cache_state=self.payload_cache_state,
            payload_placement=self.payload_placement,
        )

    def sim_config(self, fabric: FabricConfig) -> NicSimConfig:
        """The datapath configuration this device runs with."""
        return NicSimConfig(
            ring_depth=self.ring_depth,
            rx_backpressure=self.rx_backpressure,
            host=self.host_config(fabric),
            num_queues=self.num_queues,
            dma_tags=self.dma_tags,
            retain_samples=self.retain_samples,
            rss_table=self.rss_table,
        )


class SharedHost:
    """One host instance N device couplings contend on.

    Construction order matters and mirrors the single-device
    :class:`~repro.sim.nichost.HostCoupling` exactly: build the host,
    build the (shared) descriptor root complex, bind the couplings, then
    prepare the payload cache, the descriptor cache and the IOTLB — each
    over the *aggregate* working set, so N devices genuinely squeeze each
    other out of the LLC and the IOTLB reach.  With one device every
    aggregate equals the device's own working set and the preparation is
    identical to the un-shared path.
    """

    def __init__(
        self,
        fabric: FabricConfig,
        device_configs: Sequence[NicHostConfig],
        ring_depths: Sequence[int],
        *,
        seed: int,
    ) -> None:
        if not device_configs:
            raise ValidationError("a shared host needs at least one device")
        if len(device_configs) != len(ring_depths):
            raise ValidationError(
                "need one ring depth per device config "
                f"({len(device_configs)} vs {len(ring_depths)})"
            )
        partitioned = (
            fabric.ddio_partition is not None and len(device_configs) > 1
        )
        states = {config.payload_cache_state for config in device_configs}
        if (
            len(states) > 1
            and not partitioned
            and fabric.cache_model == "statistical"
        ):
            # Only the statistical shared regime folds every device into
            # one aggregate residency; the faithful model warms each
            # device's real address region and partitions are per-device
            # by construction.
            raise ValidationError(
                "devices sharing one aggregate cache residency must share "
                f"one payload cache preparation state, got {sorted(states)}; "
                "per-device states need ddio_partition or the faithful "
                "cache model"
            )
        if (
            fabric.ddio_partition is not None
            and len(fabric.ddio_partition) != len(device_configs)
        ):
            raise ValidationError(
                f"need one ddio_partition share per device "
                f"({len(device_configs)}), got {len(fabric.ddio_partition)}"
            )
        self.config = fabric
        self.partitioned = partitioned
        self.host = HostSystem.from_profile(
            fabric.system,
            iommu_enabled=fabric.iommu_enabled,
            iommu_page_size=fabric.iommu_page_size,
            seed=seed,
            cache_model=fabric.cache_model,
        )
        profile = self.host.profile
        descriptor_rng = SimRng(seed ^ _DESCRIPTOR_SEED_SALT)
        if fabric.cache_model == "faithful":
            descriptor_cache: StatisticalCache | SetAssociativeCache = (
                SetAssociativeCache(
                    profile.llc_bytes, ddio_fraction=profile.ddio_fraction
                )
            )
        else:
            descriptor_cache = StatisticalCache(
                profile.llc_bytes,
                ddio_fraction=profile.ddio_fraction,
                rng=descriptor_rng,
            )
        self.descriptor_rc = RootComplex(
            profile.root_complex_config(),
            cache=descriptor_cache,
            iommu=self.host.iommu,
            numa=self.host.numa,
            memory=self.host.root_complex.memory,
            noise=profile.noise,
            rng=descriptor_rng,
        )
        self.couplings = [
            HostCoupling(
                config,
                ring_depth=ring_depth,
                seed=seed,
                shared=self,
                device_index=index,
            )
            for index, (config, ring_depth) in enumerate(
                zip(device_configs, ring_depths)
            )
        ]
        self._prepare()

    def _prepare(self) -> None:
        """Prime the shared cache and IOTLB for the aggregate working set.

        Two residency regimes exist.  *Shared* (``ddio_partition=None``,
        the PR 4 behaviour): one aggregate window per cache model — every
        device's hit probability is diluted by its neighbours' working
        sets, and (with two or more devices) the descriptor rings compete
        with the *whole aggregate payload* working set for LLC residency,
        so a bulk neighbour evicts a victim's rings.  *Partitioned*: every
        device owns a capacity slice (routed by address region), prepared
        over that device's own working set alone — rings then compete only
        with their own device's payload window.  A single device has
        nothing to partition against and always takes the historical
        (bit-identical) preparation.
        """
        payload_lines = sum(
            coupling.payload_buffer.window_cachelines
            for coupling in self.couplings
        )
        ring_lines = sum(
            2 * coupling.ring_buffers["tx"].window_cachelines
            for coupling in self.couplings
        )
        if self.config.cache_model == "faithful":
            self._prepare_faithful()
        elif self.partitioned:
            shares = self.config.ddio_partition
            owner = _line_owner(len(self.couplings))
            payload_cache = self.host.root_complex.cache
            descriptor_cache = self.descriptor_rc.cache
            payload_cache.partition(shares, owner)
            descriptor_cache.partition(shares, owner)
            for index, coupling in enumerate(self.couplings):
                own_payload = coupling.payload_buffer.window_cachelines
                payload_cache.prepare_partition(
                    index, coupling.config.payload_cache_state, own_payload
                )
                descriptor_cache.prepare_partition(
                    index,
                    CacheState.HOST_WARM,
                    2 * coupling.ring_buffers["tx"].window_cachelines
                    + own_payload,
                )
        else:
            self.host.root_complex.prepare_cache(
                self.couplings[0].config.payload_cache_state, payload_lines
            )
            descriptor_window = ring_lines
            if len(self.couplings) > 1:
                # The rings share the LLC with every device's payload
                # buffers: aggregate payload pressure squeezes them out.
                descriptor_window += payload_lines
            self.descriptor_rc.prepare_cache(
                CacheState.HOST_WARM, descriptor_window
            )
        self._warm_iotlb()

    def repartition(self, shares: Sequence[float]) -> None:
        """Resize the per-device DDIO capacity slices mid-run.

        The control plane's DDIO actuator.  Only meaningful in the
        partitioned *statistical* regime, where a partition is a capacity
        budget plus an occupancy probability: resizing re-derives each
        device's budget from its new share and re-primes the partition in
        its configured preparation state, exactly as initial preparation
        did.  (The faithful model tracks concrete lines whose residency
        cannot be re-primed without fabricating history, so it is not
        resizable mid-run.)
        """
        if not self.partitioned:
            raise ValidationError(
                "cannot repartition: this run shares one aggregate cache "
                "residency (no ddio_partition)"
            )
        if self.config.cache_model != "statistical":
            raise ValidationError(
                "mid-run repartitioning needs the statistical cache model"
            )
        resized = tuple(float(share) for share in shares)
        if len(resized) != len(self.couplings):
            raise ValidationError(
                f"need one share per device ({len(self.couplings)}), "
                f"got {len(resized)}"
            )
        if any(share <= 0 for share in resized):
            raise ValidationError(f"shares must be positive, got {resized}")
        owner = _line_owner(len(self.couplings))
        payload_cache = self.host.root_complex.cache
        descriptor_cache = self.descriptor_rc.cache
        payload_cache.partition(resized, owner)
        descriptor_cache.partition(resized, owner)
        for index, coupling in enumerate(self.couplings):
            own_payload = coupling.payload_buffer.window_cachelines
            payload_cache.prepare_partition(
                index, coupling.config.payload_cache_state, own_payload
            )
            descriptor_cache.prepare_partition(
                index,
                CacheState.HOST_WARM,
                2 * coupling.ring_buffers["tx"].window_cachelines
                + own_payload,
            )

    def _warm_iotlb(self) -> None:
        """Prime the shared IOTLB over every device's buffer regions."""
        iommu = self.host.iommu
        iommu.invalidate()
        if iommu.enabled:
            page = self.config.iommu_page_size
            for coupling in self.couplings:
                buffer = coupling.payload_buffer
                pages_to_warm = min(
                    buffer.window_pages, iommu.config.iotlb_entries
                )
                iommu.warm(
                    [
                        buffer.base_address + index * page
                        for index in range(pages_to_warm)
                    ]
                )
            # Ring pages last, per device, so every device's (few) ring
            # translations begin as the most recently used entries.
            for coupling in self.couplings:
                for buffer in coupling.ring_buffers.values():
                    iommu.warm(
                        [
                            buffer.base_address + index * page
                            for index in range(buffer.window_pages)
                        ]
                    )
        iommu.reset_stats()

    def _prepare_faithful(self) -> None:
        """Warm the line-accurate caches over each device's real addresses.

        The statistical models are windows of probability; the faithful
        :class:`~repro.sim.cache.SetAssociativeCache` tracks concrete
        lines, so warming walks each device's actual payload and ring
        address regions (the same regions the run's DMAs will touch).
        With ``ddio_partition`` both caches first split their DDIO ways
        between the devices, so run-time write allocations evict within
        the owner's budget only.  Cross-device *descriptor* eviction
        pressure is a statistical-regime abstraction (two separate cache
        instances never see each other's traffic); here the rings simply
        stay warm unless a device's own writes evict them.
        """
        payload_cache = self.host.root_complex.cache
        descriptor_cache = self.descriptor_rc.cache
        assert isinstance(payload_cache, SetAssociativeCache)
        assert isinstance(descriptor_cache, SetAssociativeCache)
        if self.partitioned:
            owner = _line_owner(len(self.couplings))
            payload_cache.partition_ddio(self.config.ddio_partition, owner)
            descriptor_cache.partition_ddio(self.config.ddio_partition, owner)
        for coupling in self.couplings:
            buffer = coupling.payload_buffer
            state = CacheState.from_value(coupling.config.payload_cache_state)
            if state is CacheState.COLD:
                continue
            first = buffer.base_address // CACHELINE_BYTES
            for line in range(first, first + buffer.window_cachelines):
                if state is CacheState.HOST_WARM:
                    payload_cache.host_touch(line)
                else:  # DEVICE_WARM: allocate through the DDIO ways
                    payload_cache.write(line)
        for coupling in self.couplings:
            for buffer in coupling.ring_buffers.values():
                first = buffer.base_address // CACHELINE_BYTES
                for line in range(first, first + buffer.window_cachelines):
                    descriptor_cache.host_touch(line)
        # Warming is preparation, not measurement.
        payload_cache.stats = CacheStats()
        descriptor_cache.stats = CacheStats()


def _line_owner(device_count: int):
    """Map a cache-line address to the device owning its address region.

    Device regions are offset by :data:`~repro.sim.nichost.
    DEVICE_ADDRESS_STRIDE`, so the owning device falls straight out of the
    line address — this is how the partitioned cache models route an
    access to its owner's capacity slice without threading device ids
    through the root complex.
    """
    region_lines = DEVICE_ADDRESS_STRIDE // CACHELINE_BYTES

    def owner(line_address: int) -> int:
        return min(device_count - 1, line_address // region_lines)

    return owner


class _UpstreamPort:
    """One device's view of the arbitrated ingress and walker resources.

    Bound to a device index so :class:`~repro.sim.nicsim._Datapath` stays
    device-agnostic; ``claim`` replays the single-device serialisation
    order (ingress first, walker second, per-device stall accounting) but
    through the fabric's compiled arbitration topology — a single
    root-level queue set for the flat topology, a switch tree otherwise.

    The walker request chained after an ingress grant matures ``ingress
    occupancy`` nanoseconds in the simulated future; submitting it
    eagerly would let the arbiter book walker time before other devices'
    earlier requests even exist (pre-booking is exactly the unfairness
    the arbitration layer removes).  It is therefore *scheduled* through
    the event loop and submitted only when simulated time reaches it, so
    every ``request`` the arbiter sees carries the current time.
    """

    __slots__ = ("_ingress", "_walker", "_client", "_schedule", "_tracer", "_device")

    def __init__(
        self,
        ingress: CompiledTopology,
        walker: CompiledTopology,
        client: int,
        schedule,
        tracer: Tracer | None = None,
        device: str = "",
    ) -> None:
        self._ingress = ingress
        self._walker = walker
        self._client = client
        self._schedule = schedule
        #: Span tracer + device name: the port records the walker *service*
        #: span (per-hop arbitration *waits* are recorded by the compiled
        #: topologies' own trace hooks).  ``None`` keeps ``claim`` on the
        #: historical code path.
        self._tracer = tracer
        self._device = device

    def claim(self, now, access, coupling, then) -> None:
        def at_walker(ready: float) -> None:
            occupancy = access.walker_occupancy_ns

            def granted(start: float) -> None:
                coupling.note_walker_stall(max(0.0, start - ready))
                if self._tracer is not None:
                    self._tracer.record(
                        self._device, "walker", -1, STAGE_WALKER, start, occupancy
                    )
                then(start + occupancy)

            self._walker.request(self._client, ready, occupancy, granted)

        def after_ingress(ready: float) -> None:
            if access.walker_occupancy_ns > 0.0:
                if ready > now:
                    self._schedule(ready, at_walker)
                else:
                    at_walker(ready)
            else:
                then(ready)

        occupancy = access.ingress_occupancy_ns
        if occupancy > 0.0:
            self._ingress.request(
                self._client,
                now,
                occupancy,
                lambda start: after_ingress(start + occupancy),
            )
        else:
            after_ingress(now)


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricPortStats:
    """Per-device arbitration counters for one shared resource (frozen
    snapshot of :class:`~repro.sim.engine.ArbiterClientStats`).

    For devices behind a switch tree the counters are end-to-end: one
    request per DMA, busy time counted once, and the wait folds every
    hop's queueing (and, under the sliced scheme, preemption gaps) beyond
    the pure store-and-forward service.
    """

    requests: int
    waited: int
    wait_ns_total: float
    busy_ns_total: float
    wait_ns_max: float = 0.0

    @classmethod
    def from_client(cls, stats) -> "FabricPortStats":
        """Snapshot one client's live counters."""
        return cls(
            requests=stats.requests,
            waited=stats.waited,
            wait_ns_total=stats.wait_ns_total,
            busy_ns_total=stats.busy_ns_total,
            wait_ns_max=stats.wait_ns_max,
        )

    @property
    def wait_ns_mean(self) -> float:
        """Mean queueing delay per request (0 when nothing was submitted)."""
        return self.wait_ns_total / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "requests": self.requests,
            "waited": self.waited,
            "wait_ns_total": self.wait_ns_total,
            "wait_ns_mean": self.wait_ns_mean,
            "wait_ns_max": self.wait_ns_max,
            "busy_ns_total": self.busy_ns_total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FabricPortStats":
        """Rebuild port statistics from :meth:`as_dict` output."""
        return cls(
            requests=int(data["requests"]),
            waited=int(data["waited"]),
            wait_ns_total=float(data["wait_ns_total"]),
            busy_ns_total=float(data["busy_ns_total"]),
            wait_ns_max=float(data.get("wait_ns_max", 0.0)),
        )


@dataclass(frozen=True)
class DeviceContentionResult:
    """One device's outcome of a shared-host run.

    ``ingress`` / ``walker`` carry the device's arbitration counters;
    they are ``None`` for single-device runs, where no arbitration layer
    exists (the degenerate path).
    """

    name: str
    result: NicSimResult
    ingress: FabricPortStats | None = None
    walker: FabricPortStats | None = None

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        record: dict[str, object] = {
            "name": self.name,
            "result": self.result.as_dict(),
        }
        if self.ingress is not None:
            record["ingress"] = self.ingress.as_dict()
        if self.walker is not None:
            record["walker"] = self.walker.as_dict()
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceContentionResult":
        """Rebuild a device record from :meth:`as_dict` output."""
        ingress = data.get("ingress")
        walker = data.get("walker")
        return cls(
            name=str(data["name"]),
            result=NicSimResult.from_dict(data["result"]),
            ingress=FabricPortStats.from_dict(ingress) if ingress else None,
            walker=FabricPortStats.from_dict(walker) if walker else None,
        )


@dataclass(frozen=True)
class ContentionResult:
    """Everything one shared-host (multi-device) run produced.

    ``topology`` is the compact spec of the fabric tree (``None`` means
    flat: every device on the root port) and ``topology_depth`` the
    deepest device's hop count; ``quantum_ns`` / ``ddio_partition`` echo
    the sliced-arbitration and cache-partition settings of the run so
    analyses can label scenarios without the original parameters.

    ``controller`` / ``control_window_ns`` / ``control_actions`` record
    the control plane: which policy ran, its window, and the full audit
    log of every knob it retuned (empty for the static baseline).
    """

    system: str
    arbiter: str
    weights: tuple[float, ...]
    seed: int
    duration_ns: float
    devices: tuple[DeviceContentionResult, ...] = field(default_factory=tuple)
    topology: str | None = None
    topology_depth: int = 1
    quantum_ns: float | None = None
    ddio_partition: tuple[float, ...] | None = None
    controller: str = "static"
    control_window_ns: float | None = None
    control_actions: tuple[ControlAction, ...] = field(default_factory=tuple)
    #: Engine phase timing (attached only when profiling was requested)
    #: and the serialised metrics-registry snapshot (attached only when a
    #: registry was supplied) — both absent by default so historical
    #: records and the seeded goldens round-trip unchanged.
    profile: EngineProfile | None = None
    metrics: dict | None = None

    def device(self, name: str) -> DeviceContentionResult:
        """Look one device's record up by name."""
        for record in self.devices:
            if record.name == name:
                return record
        raise ValidationError(
            f"no device {name!r} in this run; devices: "
            + ", ".join(record.name for record in self.devices)
        )

    @property
    def throughputs_gbps(self) -> dict[str, float]:
        """Per-device mean payload throughput, keyed by device name."""
        return {
            record.name: record.result.throughput_gbps
            for record in self.devices
        }

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation (tagged ``"kind": "CONTENTION"``).

        The topology/quantum/partition keys are emitted only when they
        differ from the flat-fabric defaults, so PR 4-era records
        round-trip unchanged.
        """
        record: dict[str, object] = {
            "kind": "CONTENTION",
            "system": self.system,
            "arbiter": self.arbiter,
            "weights": list(self.weights),
            "seed": self.seed,
            "duration_ns": self.duration_ns,
            "devices": [device.as_dict() for device in self.devices],
        }
        if self.topology is not None:
            record["topology"] = self.topology
            record["topology_depth"] = self.topology_depth
        if self.quantum_ns is not None:
            record["quantum_ns"] = self.quantum_ns
        if self.ddio_partition is not None:
            record["ddio_partition"] = list(self.ddio_partition)
        if self.controller != "static":
            record["controller"] = self.controller
            record["control_window_ns"] = self.control_window_ns
            record["control_actions"] = [
                action.as_dict() for action in self.control_actions
            ]
        if self.profile is not None:
            record["profile"] = self.profile.as_dict()
        if self.metrics is not None:
            record["metrics"] = self.metrics
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "ContentionResult":
        """Rebuild a result from :meth:`as_dict` output."""
        topology = data.get("topology")
        quantum = data.get("quantum_ns")
        partition = data.get("ddio_partition")
        return cls(
            system=str(data["system"]),
            arbiter=str(data["arbiter"]),
            weights=tuple(float(weight) for weight in data["weights"]),
            seed=int(data["seed"]),
            duration_ns=float(data["duration_ns"]),
            devices=tuple(
                DeviceContentionResult.from_dict(record)
                for record in data["devices"]
            ),
            topology=None if topology is None else str(topology),
            topology_depth=int(data.get("topology_depth", 1)),
            quantum_ns=None if quantum is None else float(quantum),
            ddio_partition=(
                None
                if partition is None
                else tuple(float(share) for share in partition)
            ),
            controller=str(data.get("controller", "static")),
            control_window_ns=(
                None
                if data.get("control_window_ns") is None
                else float(data["control_window_ns"])
            ),
            control_actions=tuple(
                ControlAction.from_dict(action)
                for action in data.get("control_actions", ())
            ),
            profile=(
                EngineProfile.from_dict(data["profile"])
                if data.get("profile")
                else None
            ),
            metrics=data.get("metrics"),
        )


# ---------------------------------------------------------------------------
# The fabric simulator
# ---------------------------------------------------------------------------


class FabricSimulator:
    """Runs N NIC datapaths against one shared host in one event loop."""

    def __init__(
        self,
        devices: Sequence[FabricDevice],
        fabric: FabricConfig | None = None,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    ) -> None:
        if not devices:
            raise ValidationError("a fabric needs at least one device")
        self.fabric = fabric or FabricConfig()
        if (
            self.fabric.weights is not None
            and len(self.fabric.weights) != len(devices)
        ):
            raise ValidationError(
                f"need one arbitration weight per device ({len(devices)}), "
                f"got {len(self.fabric.weights)}"
            )
        names = [
            device.name or f"dev{index}"
            for index, device in enumerate(devices)
        ]
        if len(set(names)) != len(names):
            raise ValidationError(f"device names must be unique, got {names}")
        if (
            self.fabric.ddio_partition is not None
            and len(self.fabric.ddio_partition) != len(devices)
        ):
            raise ValidationError(
                f"need one ddio_partition share per device ({len(devices)}), "
                f"got {len(self.fabric.ddio_partition)}"
            )
        if self.fabric.topology is not None:
            self.fabric.topology.validate_devices(names)
        self.devices = tuple(devices)
        self.names = tuple(names)
        self.config = config
        #: Wall-clock phase timing of the most recent :meth:`run`.
        self.last_profile: EngineProfile | None = None

    def run(
        self,
        *,
        seed: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        mode: str = "exact",
    ) -> ContentionResult:
        """Simulate every device's workload against the shared host.

        ``tracer`` opts the run into span tracing (per-packet lifecycle
        stages per device, walker service, per-hop arbitration waits);
        ``metrics`` attaches a window-sampled registry snapshot to the
        result.  Both default to off, which keeps every simulation path
        on the exact historical (golden-verified) code.

        ``mode`` selects the engine, mirroring
        :meth:`NicDatapathSimulator.run <repro.sim.nicsim.NicDatapathSimulator.run>`.
        Fabric runs couple every datapath to the shared host — the very
        interaction the vectorised batch solver declares a fallback on —
        so ``"batch"`` here *is* the scalar engine (same fallback the
        single-device path takes, decided up front instead of after a
        failed solve).  ``"hybrid"`` runs fluid datapaths whose
        steady-state certificates are additionally invalidated by every
        control action: a :class:`~repro.control.runtime.ControlRuntime`
        action listener pokes all fluid queues, forcing packet-mode
        re-entry (reason ``"control"``) the next arrival after any knob
        moves.
        """
        if mode not in ("exact", "batch", "hybrid"):
            raise ValidationError(
                f"mode must be one of exact, batch, hybrid; got {mode!r}"
            )
        datapath_cls = _Datapath
        fluid_result_summary = None
        if mode == "hybrid":
            from .fastpath import fluid_datapath_class, fluid_result_summary

            datapath_cls = fluid_datapath_class()
        resolved_seed = DEFAULT_SEED if seed is None else seed
        wall_start = perf_counter()
        fabric = self.fabric
        loop = EventLoop()
        shared = SharedHost(
            fabric,
            [device.host_config(fabric) for device in self.devices],
            [device.ring_depth for device in self.devices],
            seed=resolved_seed,
        )
        count = len(self.devices)
        multi = count > 1
        weights = fabric.weights or (1.0,) * count
        if multi:
            ingress_arb = compile_topology(
                "fabric.root_complex.ingress",
                fabric.topology,
                self.names,
                schedule=loop.at,
                scheme=fabric.arbiter,
                weights=weights,
                quantum_ns=fabric.quantum_ns,
                trace=self._arb_trace(tracer, "ingress"),
            )
            walker_arb = compile_topology(
                "fabric.iommu.walker",
                fabric.topology,
                self.names,
                schedule=loop.at,
                scheme=fabric.arbiter,
                weights=weights,
                quantum_ns=fabric.quantum_ns,
                trace=self._arb_trace(tracer, "walker"),
            )
            # Batched grants: back-to-back grants on an idle horizon skip
            # the scheduler round trip (bit-identical pop order).
            ingress_arb.attach_loop(loop)
            walker_arb.attach_loop(loop)
            ingress = walker = None
        else:
            # Degenerate case: one device, nothing to arbitrate — use the
            # exact single-device resources (and code path) of
            # NicDatapathSimulator.run, preserving golden runs bit for bit.
            ingress_arb = walker_arb = None
            ingress = SerialResource("nicsim.root_complex.ingress")
            walker = SerialResource("nicsim.iommu.walker")

        # The control plane exists only when asked for: the static
        # default builds no runtime, installs no observers and feeds
        # packets through the exact historical dispatch path.
        runtime: ControlRuntime | None = None
        if fabric.controller != "static":
            runtime = ControlRuntime(
                build_controller(fabric.controller),
                (
                    fabric.control_window_ns
                    if fabric.control_window_ns is not None
                    else DEFAULT_CONTROL_WINDOW_NS
                ),
                loop,
            )

        links: list[tuple[SerialResource, SerialResource]] = []
        device_steerings: list[list[RssSteering]] = []
        device_tags: list[TagPool | None] = []
        device_paths: list[list[tuple[str, list[_Datapath]]]] = []
        for index, device in enumerate(self.devices):
            device_seed = (
                device.seed if device.seed is not None else resolved_seed
            )
            rng = SimRng(device_seed)
            sim_config = device.sim_config(fabric)
            coupling = shared.couplings[index]
            link_up = SerialResource(f"fabric.{self.names[index]}.device_to_host")
            link_down = SerialResource(f"fabric.{self.names[index]}.host_to_device")
            links.append((link_up, link_down))
            tags = (
                TagPool(f"fabric.{self.names[index]}.dma_tags", device.dma_tags)
                if device.dma_tags is not None
                else None
            )
            device_tags.append(tags)
            port = (
                _UpstreamPort(
                    ingress_arb,
                    walker_arb,
                    index,
                    loop.at,
                    tracer=tracer,
                    device=self.names[index],
                )
                if multi
                else None
            )
            workload = device.workload
            directions: list[tuple[str, list[_Datapath]]] = []
            steerings: list[RssSteering] = []
            for direction in ("tx", "rx") if workload.duplex else ("tx",):
                warmup_gate = (
                    None
                    if device.retain_samples
                    else _WarmupGate(
                        _streaming_warmup_threshold(
                            device.packets,
                            warmup_fraction=sim_config.warmup_fraction,
                            ring_depth=device.ring_depth,
                        )
                    )
                )
                queues = [
                    datapath_cls(
                        direction,
                        device.model,
                        self.config,
                        sim_config,
                        loop,
                        link_up,
                        link_down,
                        coupling=coupling,
                        ingress=ingress,
                        walker=walker,
                        tags=tags,
                        queue_index=queue_index,
                        num_queues=device.num_queues,
                        host_port=port,
                        warmup_gate=warmup_gate,
                        tracer=tracer,
                        device=self.names[index],
                    )
                    for queue_index in range(device.num_queues)
                ]
                schedule = workload.generate(
                    device.packets, rng, stream=direction
                )
                arrival_times = schedule.arrival_times_ns.tolist()
                sizes = schedule.sizes.tolist()
                if device.num_queues == 1:
                    on_arrival = queues[0].on_arrival
                    loop.feed_many(
                        (time, on_arrival, size)
                        for time, size in zip(arrival_times, sizes)
                    )
                else:
                    if schedule.flows is None:
                        raise ValidationError(
                            f"a {device.num_queues}-queue device needs a "
                            "workload with a flow model to steer by"
                        )
                    if runtime is not None:
                        # Live steering: packets are pre-hashed to table
                        # buckets and dispatched through a rewritable
                        # indirection table.  The identity table makes the
                        # untouched mapping bucket-for-bucket identical to
                        # the direct hash % num_queues path.
                        table = device.rss_table or tuple(
                            identity_table(device.num_queues)
                        )
                        steering = RssSteering(queues, table)
                        steerings.append(steering)
                        buckets = rss_buckets(
                            schedule.flows, len(table), seed=device_seed
                        )
                        loop.feed_many(
                            (
                                arrival_times[packet],
                                partial(steering.dispatch, bucket),
                                sizes[packet],
                            )
                            for packet, bucket in enumerate(buckets.tolist())
                        )
                    elif device.rss_table is not None:
                        table = device.rss_table
                        buckets = rss_buckets(
                            schedule.flows, len(table), seed=device_seed
                        )
                        loop.feed_many(
                            (
                                arrival_times[packet],
                                queues[table[bucket]].on_arrival,
                                sizes[packet],
                            )
                            for packet, bucket in enumerate(buckets.tolist())
                        )
                    else:
                        targets = rss_queues(
                            schedule.flows, device.num_queues, seed=device_seed
                        )
                        loop.feed_many(
                            (
                                arrival_times[packet],
                                queues[target].on_arrival,
                                sizes[packet],
                            )
                            for packet, target in enumerate(targets.tolist())
                        )
                directions.append((direction, queues))
            device_paths.append(directions)
            device_steerings.append(steerings)

        if runtime is not None:
            for index in range(count):
                runtime.add_device(
                    self.names[index],
                    index,
                    device_paths[index][0][1],  # TX queues
                    device_steerings[index],
                    shared.couplings[index],
                )
            if multi:
                if fabric.arbiter in WEIGHTED_SCHEMES:
                    runtime.bind_weights(
                        weights,
                        [
                            ingress_arb.set_device_weights,
                            walker_arb.set_device_weights,
                        ],
                    )
                def port_totals(index, _i=ingress_arb, _w=walker_arb):
                    ingress_stats = _i.client_stats(index)
                    walker_stats = _w.client_stats(index)
                    return (
                        ingress_stats.wait_ns_total
                        + walker_stats.wait_ns_total,
                        ingress_stats.busy_ns_total
                        + walker_stats.busy_ns_total,
                    )

                runtime.bind_port_stats(port_totals)
            if shared.partitioned and fabric.cache_model == "statistical":
                runtime.bind_ddio(fabric.ddio_partition, shared.repartition)
            if mode == "hybrid":
                # Any control action (weights, RSS, DDIO) invalidates the
                # steady-state certificate fleet-wide: an actuator changes
                # the service rates the residual reservoir was sampled
                # under, and not only on the device it names (weights and
                # DDIO shares redistribute capacity across neighbours).
                fluid_paths = tuple(
                    path
                    for device_dirs in device_paths
                    for _direction, queues in device_dirs
                    for path in queues
                )

                def poke_fluid(_action, paths=fluid_paths):
                    for path in paths:
                        path.control_poke()

                runtime.add_action_listener(poke_fluid)
            runtime.start()

        if metrics is not None:
            # Align metric windows with the control plane's observation
            # windows when a controller is running.
            _install_metrics_sampler(
                metrics,
                loop,
                list(zip(self.names, device_paths)),
                prefix="fabric",
                window_ns=(
                    runtime.window_ns
                    if runtime is not None
                    else DEFAULT_CONTROL_WINDOW_NS
                ),
            )

        events_start = perf_counter()
        loop.run()
        stats_start = perf_counter()

        records = []
        overall_duration = 0.0
        for index, device in enumerate(self.devices):
            directions = device_paths[index]
            for _, queues in directions:
                for path in queues:
                    path.finish()
            duration = max(
                [0.0]
                + [
                    path.max_notify
                    for _, queues in directions
                    for path in queues
                ]
            )
            overall_duration = max(overall_duration, duration)
            sim_config = device.sim_config(fabric)
            results = [
                _direction_result(direction, queues, sim_config)
                for direction, queues in directions
            ]
            link_up, link_down = links[index]
            tags = device_tags[index]
            result = NicSimResult(
                model=device.model.name,
                workload=device.workload.name,
                packets=device.packets,
                duration_ns=duration,
                tx=results[0],
                rx=results[1] if len(results) > 1 else None,
                link_utilisation_up=(
                    link_up.utilisation(duration) if duration > 0 else 0.0
                ),
                link_utilisation_down=(
                    link_down.utilisation(duration) if duration > 0 else 0.0
                ),
                host=shared.couplings[index].stats(),
                tags=DmaTagStats.from_pool(tags) if tags is not None else None,
                fluid=(
                    fluid_result_summary(directions)
                    if fluid_result_summary is not None
                    else None
                ),
            )
            records.append(
                DeviceContentionResult(
                    name=self.names[index],
                    result=result,
                    ingress=(
                        _port_stats(ingress_arb, index) if multi else None
                    ),
                    walker=(
                        _port_stats(walker_arb, index) if multi else None
                    ),
                )
            )

        self.last_profile = EngineProfile(
            label=(
                f"contend {'+'.join(self.names)} "
                f"({fabric.arbiter}, {fabric.system})"
            ),
            build_s=events_start - wall_start,
            events_s=stats_start - events_start,
            stats_s=perf_counter() - stats_start,
            events=loop.processed,
            mode=mode if mode == "hybrid" else "exact",
        )
        if metrics is not None:
            _finalise_metrics(
                metrics, list(zip(self.names, device_paths)), prefix="fabric"
            )
            for index, record in enumerate(records):
                dev = metric_segment(self.names[index])
                result = record.result
                metrics.gauge(f"fabric.{dev}.link.up_utilisation").set(
                    result.link_utilisation_up
                )
                metrics.gauge(f"fabric.{dev}.link.down_utilisation").set(
                    result.link_utilisation_down
                )
                for resource, stats in (
                    ("ingress", record.ingress),
                    ("walker", record.walker),
                ):
                    if stats is not None:
                        metrics.gauge(
                            f"fabric.{dev}.{resource}.wait_ns_mean"
                        ).set(stats.wait_ns_mean)
        topology = fabric.topology
        # A single device bypasses arbitration entirely (the degenerate
        # path), so none of the topology/quantum/partition knobs applied:
        # suppress them rather than label a solo run a fabric scenario.
        return ContentionResult(
            system=fabric.system,
            arbiter=fabric.arbiter,
            weights=tuple(weights),
            seed=resolved_seed,
            duration_ns=overall_duration,
            devices=tuple(records),
            topology=(
                None
                if not multi or topology is None or topology.is_flat
                else topology.spec()
            ),
            topology_depth=(
                1 if not multi or topology is None else topology.depth()
            ),
            quantum_ns=fabric.quantum_ns if multi else None,
            ddio_partition=fabric.ddio_partition if multi else None,
            controller=fabric.controller,
            control_window_ns=(
                runtime.window_ns if runtime is not None else None
            ),
            control_actions=(
                tuple(runtime.actions) if runtime is not None else ()
            ),
            metrics=metrics.as_dict() if metrics is not None else None,
        )

    def _arb_trace(self, tracer: Tracer | None, resource: str):
        """Per-hop grant observer for one arbitrated resource, or ``None``.

        Records the *wait* (request → grant) at each hop as an
        ``arb:<resource>@<node>`` span of the requesting device.  The
        sliced scheme can grant virtual (backdated) starts, so
        non-positive waits are skipped rather than recorded as negative
        spans.
        """
        if tracer is None:
            return None
        names = self.names

        def trace(
            device: int, node: str, asked: float, start: float, duration: float
        ) -> None:
            wait = start - asked
            if wait > 0.0:
                tracer.record(
                    names[device],
                    resource,
                    -1,
                    f"{ARB_PREFIX}{resource}@{node}",
                    asked,
                    wait,
                )

        return trace


def _port_stats(
    resource: CompiledTopology, client: int
) -> FabricPortStats:
    """Snapshot one device's counters from a compiled topology."""
    return FabricPortStats.from_client(resource.client_stats(client))
