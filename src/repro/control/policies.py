"""Control policies: observe a window, decide, drive the actuators.

Three policies ship behind the common :class:`Controller` interface:

* :class:`StaticController` — the do-nothing baseline.  Selecting it is
  contractually identical to running without a control plane at all (the
  fabric installs no hooks for it), so ``controller="static"`` runs stay
  bit-identical to the seeded goldens.
* :class:`ThresholdController` — reactive with hysteresis: multiplicative
  knob moves once a violation persists for ``patience`` windows, decay
  once comfort persists, and a dead band between the violate and clear
  thresholds so the loop cannot chatter.
* :class:`AimdController` — AIMD: gentle additive moves every violating
  window, multiplicative backoff when comfortable — the congestion-
  control shape, trading reaction speed for smoother convergence.

The *signals* are shared.  A device occupying most of the arbitrated
fabric's service time (``fabric_share``) is a saturating bulk source —
its latency is queueing behind its own load, not an SLO.  Ring fill
cannot make that call: a *starved* victim's rings also run full, because
the contended fabric will not drain them.  Every non-bulk device with
traffic is latency-sensitive.  For those:

* **wait dominance** (``wait_fraction``: arbitration wait per packet over
  mean latency) triggers the *weights* actuator — the fabric is the
  bottleneck, so boost the victim's arbitration weight;
* **hot-queue concentration** (one queue carrying most of the window's
  packets while other flows' hash buckets still map onto it) triggers the
  *rss* actuator — isolate the elephant's bucket, move the mice off;
* **descriptor hit-rate collapse** triggers the *ddio* actuator — grow
  the starved device's partition share.

Policies are pure observers of :class:`~repro.control.observations.
DeviceWindow` records and talk back only through the actuator interface,
so they unit-test with hand-built observations and no simulator.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ValidationError
from .observations import DeviceWindow

#: Policy names accepted by ``ContentionParams.controller`` and the CLI.
CONTROL_POLICIES = ("static", "threshold", "aimd")

#: Fabric busy share above which a device is classified as a saturating
#: bulk source (its DMAs occupy most of the arbitrated service time, so
#: its latency is self-inflicted queueing rather than an SLO signal).
BULK_FABRIC_SHARE = 0.5

#: Minimum packets a window must carry before its statistics are trusted.
MIN_WINDOW_COUNT = 8


class Controller:
    """One control policy: ticked every window with fresh observations."""

    #: Registry name (overridden by subclasses).
    name = "abstract"

    def tick(
        self,
        now_ns: float,
        devices: Sequence[DeviceWindow],
        actuators,
    ) -> None:
        """Observe one window and drive actuators (see ``runtime.Actuators``)."""
        raise NotImplementedError


class StaticController(Controller):
    """The baseline: never actuates.  Equivalent to no control plane."""

    name = "static"

    def tick(self, now_ns, devices, actuators) -> None:
        return None


class _ReactiveBase(Controller):
    """Shared signal extraction and per-device state for the live policies."""

    def __init__(
        self,
        *,
        violate_wait_fraction: float = 0.35,
        clear_wait_fraction: float = 0.10,
        hot_queue_share: float = 0.5,
        hit_rate_floor: float = 0.6,
        max_weight: float = 16.0,
        max_share_boost: float = 4.0,
    ) -> None:
        self.violate_wait_fraction = violate_wait_fraction
        self.clear_wait_fraction = clear_wait_fraction
        self.hot_queue_share = hot_queue_share
        self.hit_rate_floor = hit_rate_floor
        self.max_weight = max_weight
        self.max_share_boost = max_share_boost
        self._violating: dict[str, int] = {}
        self._comfortable: dict[str, int] = {}
        self._base_weights: tuple[float, ...] | None = None
        self._base_shares: tuple[float, ...] | None = None

    # -- shared signal extraction ---------------------------------------------

    def _is_bulk(self, device: DeviceWindow) -> bool:
        return device.fabric_share >= BULK_FABRIC_SHARE

    def _update_streaks(self, device: DeviceWindow) -> tuple[int, int]:
        """Track consecutive violating / comfortable windows per device."""
        name = device.device
        if device.count < MIN_WINDOW_COUNT or self._is_bulk(device):
            # No trustworthy signal: freeze both streaks.
            return self._violating.get(name, 0), self._comfortable.get(name, 0)
        fraction = device.wait_fraction
        if fraction > self.violate_wait_fraction:
            self._violating[name] = self._violating.get(name, 0) + 1
            self._comfortable[name] = 0
        elif fraction < self.clear_wait_fraction:
            self._comfortable[name] = self._comfortable.get(name, 0) + 1
            self._violating[name] = 0
        # Inside the dead band both streaks hold (hysteresis).
        return self._violating.get(name, 0), self._comfortable.get(name, 0)

    def _queue_loads(
        self, device: DeviceWindow
    ) -> tuple[list[int], int] | None:
        """Per-queue packet loads from the window's bucket counts."""
        if device.bucket_counts is None or device.rss_table is None:
            return None
        loads = [0] * len(device.queues)
        for bucket, count in enumerate(device.bucket_counts):
            loads[device.rss_table[bucket]] += count
        return loads, sum(loads)

    def _hot_queue_pathology(
        self, device: DeviceWindow
    ) -> tuple[int, int, list[int]] | None:
        """Detect the elephant/mice co-location pathology.

        Returns ``(hot_queue, elephant_bucket, movable_buckets)`` when one
        queue carries more than ``hot_queue_share`` of the window's
        packets *and* buckets other than the biggest one still map onto
        it — i.e. mice are trapped behind the elephant and re-steering
        can free them.  ``None`` otherwise.
        """
        queue_view = self._queue_loads(device)
        if queue_view is None:
            return None
        loads, total = queue_view
        if total < MIN_WINDOW_COUNT:
            return None
        hot_queue = max(range(len(loads)), key=lambda q: (loads[q], -q))
        if loads[hot_queue] <= self.hot_queue_share * total:
            return None
        table = device.rss_table
        counts = device.bucket_counts
        on_hot = [b for b in range(len(table)) if table[b] == hot_queue]
        if len(on_hot) <= 1:
            return None  # already isolated
        elephant = max(on_hot, key=lambda b: (counts[b], -b))
        movable = [b for b in on_hot if b != elephant]
        return hot_queue, elephant, movable

    def _spread_buckets(
        self,
        device: DeviceWindow,
        hot_queue: int,
        movable: Sequence[int],
    ) -> list[int]:
        """A new table with ``movable`` buckets spread over the cool queues,
        least-loaded first (deterministic: ties break on queue index)."""
        table = list(device.rss_table)
        counts = device.bucket_counts
        loads, _ = self._queue_loads(device)
        cool = [q for q in range(len(device.queues)) if q != hot_queue]
        for bucket in sorted(movable, key=lambda b: (-counts[b], b)):
            target = min(cool, key=lambda q: (loads[q], q))
            table[bucket] = target
            loads[target] += counts[bucket]
        return table

    def _boost_share(
        self, actuators, device: DeviceWindow, factor: float, reason: str
    ) -> None:
        shares = actuators.ddio_shares()
        if shares is None:
            return
        if self._base_shares is None:
            self._base_shares = shares
        base = self._base_shares[device.index]
        cap = base * self.max_share_boost
        current = shares[device.index]
        if current >= cap:
            return
        new_shares = list(shares)
        new_shares[device.index] = min(cap, current * factor)
        actuators.set_ddio_shares(
            tuple(new_shares), device=device.device, reason=reason
        )


class ThresholdController(_ReactiveBase):
    """Reactive policy with hysteresis: act late, act big, back off slowly.

    A violation must persist ``patience`` consecutive windows before the
    knob moves, and every move is multiplicative (``boost``×).  Comfort
    must equally persist before the knob decays back.  The wait-fraction
    dead band between the violate and clear thresholds keeps the loop
    from chattering around one operating point.
    """

    name = "threshold"

    def __init__(self, *, patience: int = 2, boost: float = 2.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if patience < 1:
            raise ValidationError(f"patience must be >= 1, got {patience}")
        if boost <= 1.0:
            raise ValidationError(f"boost must be > 1, got {boost}")
        self.patience = patience
        self.boost = boost

    def tick(self, now_ns, devices, actuators) -> None:
        weights = actuators.weights()
        if weights is not None and self._base_weights is None:
            self._base_weights = weights
        for device in devices:
            violating, comfortable = self._update_streaks(device)
            # RSS: isolate the elephant once the pathology persists.
            pathology = self._hot_queue_pathology(device)
            if pathology is not None:
                hot_queue, elephant, movable = pathology
                streak_key = f"rss:{device.device}"
                streak = self._violating.get(streak_key, 0) + 1
                if streak >= self.patience:
                    self._violating[streak_key] = 0
                    actuators.set_rss_table(
                        device.index,
                        self._spread_buckets(device, hot_queue, movable),
                        reason=(
                            f"queue {hot_queue} carries >"
                            f"{self.hot_queue_share:.0%} of window "
                            f"{device.window_index}; isolating bucket "
                            f"{elephant}, re-steering {len(movable)} buckets"
                        ),
                    )
                else:
                    self._violating[streak_key] = streak
            if self._is_bulk(device) or device.count < MIN_WINDOW_COUNT:
                continue
            # Weights: boost a wait-dominated victim, decay when calm.
            if weights is not None:
                if violating >= self.patience:
                    current = actuators.weights()[device.index]
                    if current < self.max_weight:
                        new = list(actuators.weights())
                        new[device.index] = min(
                            self.max_weight, current * self.boost
                        )
                        actuators.set_weights(
                            tuple(new),
                            device=device.device,
                            reason=(
                                f"wait-dominated for {violating} "
                                f"window(s) (wait fraction now "
                                f"{device.wait_fraction:.2f}, violate > "
                                f"{self.violate_wait_fraction})"
                            ),
                        )
                elif comfortable >= self.patience:
                    base = self._base_weights[device.index]
                    current = actuators.weights()[device.index]
                    if current > base:
                        new = list(actuators.weights())
                        new[device.index] = max(base, current / self.boost)
                        actuators.set_weights(
                            tuple(new),
                            device=device.device,
                            reason=(
                                f"comfortable for {comfortable} "
                                f"window(s) (wait fraction "
                                f"{device.wait_fraction:.2f} < "
                                f"{self.clear_wait_fraction}); decaying"
                            ),
                        )
            # DDIO: grow a starved victim's partition share.
            hit_rate = device.descriptor_hit_rate
            if (
                hit_rate is not None
                and hit_rate < self.hit_rate_floor
                and violating >= self.patience
            ):
                self._boost_share(
                    actuators,
                    device,
                    self.boost,
                    reason=(
                        f"descriptor hit rate {hit_rate:.2f} < "
                        f"{self.hit_rate_floor} while wait-dominated"
                    ),
                )


class AimdController(_ReactiveBase):
    """AIMD policy: additive increase every violating window,
    multiplicative decrease when comfortable.

    The congestion-control shape — small persistent corrections instead
    of the threshold policy's stepped moves.  The RSS actuator moves one
    bucket per window (the heaviest movable one) rather than re-steering
    the whole table at once.
    """

    name = "aimd"

    def __init__(
        self, *, increase: float = 1.0, decrease: float = 0.5, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        if increase <= 0:
            raise ValidationError(f"increase must be positive, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ValidationError(
                f"decrease must be within (0, 1), got {decrease}"
            )
        self.increase = increase
        self.decrease = decrease

    def tick(self, now_ns, devices, actuators) -> None:
        weights = actuators.weights()
        if weights is not None and self._base_weights is None:
            self._base_weights = weights
        for device in devices:
            violating, comfortable = self._update_streaks(device)
            # RSS: move one bucket per window while the pathology holds.
            pathology = self._hot_queue_pathology(device)
            if pathology is not None:
                hot_queue, elephant, movable = pathology
                counts = device.bucket_counts
                bucket = max(movable, key=lambda b: (counts[b], -b))
                actuators.set_rss_table(
                    device.index,
                    self._spread_buckets(device, hot_queue, [bucket]),
                    reason=(
                        f"queue {hot_queue} hot in window "
                        f"{device.window_index}; moving bucket {bucket}"
                    ),
                )
            if self._is_bulk(device) or device.count < MIN_WINDOW_COUNT:
                continue
            if weights is not None:
                if violating >= 1:
                    current = actuators.weights()[device.index]
                    if current < self.max_weight:
                        new = list(actuators.weights())
                        new[device.index] = min(
                            self.max_weight, current + self.increase
                        )
                        actuators.set_weights(
                            tuple(new),
                            device=device.device,
                            reason=(
                                f"wait-dominated (fraction now "
                                f"{device.wait_fraction:.2f}); additive "
                                f"increase"
                            ),
                        )
                elif comfortable >= 1:
                    base = self._base_weights[device.index]
                    current = actuators.weights()[device.index]
                    if current > base:
                        new = list(actuators.weights())
                        new[device.index] = max(base, current * self.decrease)
                        actuators.set_weights(
                            tuple(new),
                            device=device.device,
                            reason=(
                                f"comfortable (wait fraction "
                                f"{device.wait_fraction:.2f}); "
                                f"multiplicative decrease"
                            ),
                        )
            hit_rate = device.descriptor_hit_rate
            if (
                hit_rate is not None
                and hit_rate < self.hit_rate_floor
                and violating >= 1
            ):
                self._boost_share(
                    actuators,
                    device,
                    1.0 + self.increase / 10.0,
                    reason=(
                        f"descriptor hit rate {hit_rate:.2f} < "
                        f"{self.hit_rate_floor}; additive share increase"
                    ),
                )


def build_controller(name: str) -> Controller:
    """Instantiate a policy by registry name."""
    key = str(name).strip().lower()
    if key == "static":
        return StaticController()
    if key == "threshold":
        return ThresholdController()
    if key == "aimd":
        return AimdController()
    raise ValidationError(
        f"unknown controller {name!r}; valid: {', '.join(CONTROL_POLICIES)}"
    )
