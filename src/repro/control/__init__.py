"""Closed-loop control plane over the fabric's QoS knobs.

The package splits along the classic control-loop seams:

- :mod:`repro.control.observations` — what the policy sees each window
  (immutable per-device telemetry deltas).
- :mod:`repro.control.policies` — the decision logic: a static baseline,
  a threshold-reactive policy with hysteresis, and an AIMD policy.
- :mod:`repro.control.actions` — the audit log of every actuation.
- :mod:`repro.control.runtime` — the tick driver that lives inside the
  shared event loop and wires observers, policies and actuators to a
  live :class:`~repro.sim.fabric.FabricSimulator` run.
"""

from .actions import ACTUATOR_KINDS, ControlAction
from .observations import DeviceWindow, QueueWindow
from .policies import (
    CONTROL_POLICIES,
    AimdController,
    Controller,
    StaticController,
    ThresholdController,
    build_controller,
)
from .runtime import (
    BUCKETS_PER_QUEUE,
    DEFAULT_CONTROL_WINDOW_NS,
    Actuators,
    ControlRuntime,
    RssSteering,
    identity_table,
    steering_table_length,
)

__all__ = [
    "ACTUATOR_KINDS",
    "BUCKETS_PER_QUEUE",
    "CONTROL_POLICIES",
    "DEFAULT_CONTROL_WINDOW_NS",
    "Actuators",
    "AimdController",
    "ControlAction",
    "ControlRuntime",
    "Controller",
    "DeviceWindow",
    "QueueWindow",
    "RssSteering",
    "StaticController",
    "ThresholdController",
    "build_controller",
    "identity_table",
    "steering_table_length",
]
