"""The controller action log: what was retuned, when, and why.

Every actuation the control plane performs mid-run is recorded as one
:class:`ControlAction` — the audit trail a production control loop would
emit.  Actions ride along on the run's
:class:`~repro.sim.fabric.ContentionResult`, serialise with it, and feed
``analysis.format_control_summary``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ValidationError

#: The actuator kinds a controller can drive.
ACTUATOR_KINDS = ("weights", "rss", "ddio")


@dataclass(frozen=True)
class ControlAction:
    """One knob retuned by the control plane.

    Attributes:
        time_ns: simulation time the actuation took effect.
        device: name of the device the action targets (``"*"`` for
            fabric-wide actions such as a full weight vector update).
        actuator: which knob was driven — ``"weights"``, ``"rss"`` or
            ``"ddio"``.
        reason: short human-readable trigger description.
        before / after: the knob's value either side of the actuation
            (JSON-serialisable lists/numbers).
    """

    time_ns: float
    device: str
    actuator: str
    reason: str
    before: tuple[float, ...] | tuple[int, ...]
    after: tuple[float, ...] | tuple[int, ...]

    def __post_init__(self) -> None:
        if self.actuator not in ACTUATOR_KINDS:
            raise ValidationError(
                f"unknown actuator {self.actuator!r}; "
                f"valid: {', '.join(ACTUATOR_KINDS)}"
            )
        object.__setattr__(self, "before", tuple(self.before))
        object.__setattr__(self, "after", tuple(self.after))

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "time_ns": self.time_ns,
            "device": self.device,
            "actuator": self.actuator,
            "reason": self.reason,
            "before": list(self.before),
            "after": list(self.after),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "ControlAction":
        """Rebuild an action from :meth:`as_dict` output."""
        return cls(
            time_ns=float(record["time_ns"]),  # type: ignore[arg-type]
            device=str(record["device"]),
            actuator=str(record["actuator"]),
            reason=str(record["reason"]),
            before=tuple(record["before"]),  # type: ignore[arg-type]
            after=tuple(record["after"]),  # type: ignore[arg-type]
        )
