"""What the control plane sees each window: per-device telemetry deltas.

A controller never reads simulator internals directly — each tick the
:class:`~repro.control.runtime.ControlRuntime` freezes one
:class:`~repro.stats.WindowedStats` window per TX queue and packages the
result (plus instantaneous ring fill, the window's descriptor-cache hit
rate and the window's arbitration-wait delta) into immutable
:class:`DeviceWindow` records.  Policies decide from these alone, which
keeps them unit-testable with hand-built observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats import QuantileSketch, StreamingMoments, WindowSnapshot


@dataclass(frozen=True)
class QueueWindow:
    """One TX queue's latency window plus its instantaneous ring state."""

    queue_index: int
    snapshot: WindowSnapshot
    ring_fill: float

    @property
    def count(self) -> int:
        return self.snapshot.count

    @property
    def p99_ns(self) -> float | None:
        """The window's p99 latency (``None`` for an empty window)."""
        if self.snapshot.count == 0:
            return None
        return self.snapshot.quantile(0.99)


@dataclass(frozen=True)
class DeviceWindow:
    """One device's merged observation window.

    Attributes:
        device / index: the device's name and fabric index.
        window_index: which tick produced this window (0-based).
        queues: per-TX-queue windows, in queue order.
        sketch / moments: the queue windows merged in queue order.
        ring_fill: the fullest TX ring's occupancy fraction at the tick —
            ~1.0 flags a saturating bulk source, low values a paced
            latency-sensitive one.
        descriptor_hit_rate: descriptor-cache hit fraction over this
            window's accesses (``None`` if the window saw none).
        wait_ns_delta: arbitration wait accumulated this window across
            the device's ingress path (0.0 when no arbitration layer).
        busy_ns_delta: fabric service time this device's DMAs occupied
            this window (ingress + walker; 0.0 when no arbitration
            layer).  ``busy_ns_delta / window_ns`` is the device's
            *fabric share* — the signal separating a saturating bulk
            source (share near or above 1) from a starved victim (low
            share, yet full rings because the fabric won't drain them).
        window_ns: the observation window length in nanoseconds.
        bucket_counts: per-RSS-bucket arrival counts this window
            (``None`` when the device has no live indirection table).
        rss_table: the live indirection table (``None`` when static).
    """

    device: str
    index: int
    window_index: int
    queues: tuple[QueueWindow, ...]
    sketch: QuantileSketch
    moments: StreamingMoments
    ring_fill: float
    descriptor_hit_rate: float | None
    wait_ns_delta: float
    busy_ns_delta: float = 0.0
    window_ns: float = 0.0
    bucket_counts: tuple[int, ...] | None = None
    rss_table: tuple[int, ...] | None = None

    @property
    def count(self) -> int:
        """Packets delivered (TX) this window."""
        return self.sketch.count

    @property
    def p99_ns(self) -> float | None:
        if self.sketch.count == 0:
            return None
        return self.sketch.quantile(0.99)

    @property
    def mean_ns(self) -> float | None:
        if self.sketch.count == 0:
            return None
        return self.sketch.mean

    @property
    def fabric_share(self) -> float:
        """Fraction of the window this device's DMAs kept the arbitrated
        fabric resources busy (can exceed 1: ingress and walker are two
        resources).  High share = the device *is* the load."""
        if self.window_ns <= 0.0:
            return 0.0
        return self.busy_ns_delta / self.window_ns

    @property
    def wait_fraction(self) -> float:
        """Arbitration wait per delivered packet over the window's mean
        latency — the fraction of a packet's life spent waiting for the
        fabric, the wait-dominance signal the weight policies act on."""
        if self.sketch.count == 0:
            return 0.0
        mean = self.sketch.mean
        if mean <= 0.0:
            return 0.0
        return (self.wait_ns_delta / self.sketch.count) / mean
