"""The controller runtime: window ticks inside the shared event loop.

:class:`ControlRuntime` is the glue between a policy and a live fabric
run.  The fabric simulator registers each device's TX datapaths (whose
per-packet latencies feed per-queue :class:`~repro.stats.WindowedStats`
observers), the live RSS steering dispatchers, the arbitration trees and
the shared host — then calls :meth:`start`.  From that point the runtime
ticks itself every ``window_ns`` of *simulation* time: freeze the
window, hand the policy immutable :class:`~repro.control.observations.
DeviceWindow` records, and let it drive the three actuators.

The tick self-reschedules only while the event loop still has work
(``loop.peek_time() < inf``), so a drained run ends exactly when the
traffic does — the control plane never keeps the loop alive on its own.

The runtime exists only when a non-static controller was requested;
``controller="static"`` installs no hooks, no observers and no tick, so
the default path is bit-identical to a run without a control plane.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..errors import ValidationError
from ..stats import QuantileSketch, StreamingMoments, WindowedStats
from .actions import ControlAction
from .observations import DeviceWindow, QueueWindow
from .policies import Controller

#: Default controller window: 50 µs of simulation time, a few thousand
#: packets at the contention scenarios' loads — enough for stable window
#: percentiles, short enough for several corrective rounds per run.
DEFAULT_CONTROL_WINDOW_NS = 50_000.0

#: Indirection-table buckets per queue for the live steering table (the
#: table length is ``num_queues * max(1, BUCKETS_PER_QUEUE // num_queues)``
#: so the queue count always divides it and the identity table
#: ``table[b] = b % num_queues`` reproduces the direct ``hash % queues``
#: mapping bucket for bucket).
BUCKETS_PER_QUEUE = 64


def steering_table_length(num_queues: int) -> int:
    """Length of the live indirection table for ``num_queues`` queues."""
    return num_queues * max(1, BUCKETS_PER_QUEUE // num_queues)


def identity_table(num_queues: int) -> list[int]:
    """The table equivalent to direct hashing (``table[b] = b % queues``)."""
    return [
        bucket % num_queues
        for bucket in range(steering_table_length(num_queues))
    ]


class RssSteering:
    """A live, rewritable RSS indirection table for one direction.

    Packets arrive pre-hashed to a *bucket* (the hash is fixed per run —
    re-keying Toeplitz mid-run would reorder every flow); the table maps
    buckets to queues and is the thing the controller rewrites.  Per-
    bucket arrival counts accumulate per window so policies can see which
    bucket the elephant lives in.
    """

    __slots__ = ("queues", "table", "window_buckets")

    def __init__(self, queues: Sequence[object], table: Sequence[int]) -> None:
        self.queues = list(queues)
        self.table = [int(entry) for entry in table]
        for entry in self.table:
            if not 0 <= entry < len(self.queues):
                raise ValidationError(
                    f"steering table entries must be queue indices in "
                    f"[0, {len(self.queues)}), got {entry}"
                )
        self.window_buckets = [0] * len(self.table)

    def dispatch(self, bucket: int, now: float, size: int) -> None:
        """Deliver one pre-hashed packet through the live table."""
        self.window_buckets[bucket] += 1
        self.queues[self.table[bucket]].on_arrival(now, size)

    def reset_window(self) -> None:
        self.window_buckets = [0] * len(self.table)

    def set_table(self, table: Sequence[int]) -> None:
        entries = [int(entry) for entry in table]
        if len(entries) != len(self.table):
            raise ValidationError(
                f"steering table length is fixed at {len(self.table)}, "
                f"got {len(entries)}"
            )
        for entry in entries:
            if not 0 <= entry < len(self.queues):
                raise ValidationError(
                    f"steering table entries must be queue indices in "
                    f"[0, {len(self.queues)}), got {entry}"
                )
        self.table[:] = entries


class _DeviceState:
    """Everything the runtime tracks for one registered device."""

    __slots__ = (
        "name",
        "index",
        "windowed",
        "rings",
        "steerings",
        "coupling",
        "last_descriptor",
        "last_port",
    )

    def __init__(self, name, index, windowed, rings, steerings, coupling):
        self.name = name
        self.index = index
        self.windowed = windowed            # one WindowedStats per TX queue
        self.rings = rings                  # one _Ring per TX queue
        self.steerings = steerings          # RssSteering per direction (tx first)
        self.coupling = coupling
        self.last_descriptor = (0, 0)       # (accesses, hits) at last tick
        self.last_port = (0.0, 0.0)         # (wait_ns, busy_ns) at last tick


class Actuators:
    """The knobs a policy may drive, with logging built in.

    Every successful ``set_*`` appends one
    :class:`~repro.control.actions.ControlAction` to the runtime's log.
    Unbound actuators (no arbitration layer, no partition, no steering)
    report themselves unavailable rather than raising, so one policy
    works across scenario shapes.
    """

    def __init__(self, runtime: "ControlRuntime") -> None:
        self._runtime = runtime

    # -- weights ---------------------------------------------------------------

    def weights(self) -> tuple[float, ...] | None:
        """Current per-device weights (``None`` when not actuatable)."""
        return self._runtime._weights

    def set_weights(
        self, weights: Sequence[float], *, device: str, reason: str
    ) -> bool:
        return self._runtime._apply_weights(weights, device, reason)

    # -- rss -------------------------------------------------------------------

    def rss_table(self, device_index: int) -> tuple[int, ...] | None:
        state = self._runtime._devices[device_index]
        if not state.steerings:
            return None
        return tuple(state.steerings[0].table)

    def set_rss_table(
        self, device_index: int, table: Sequence[int], *, reason: str
    ) -> bool:
        return self._runtime._apply_rss_table(device_index, table, reason)

    # -- ddio ------------------------------------------------------------------

    def ddio_shares(self) -> tuple[float, ...] | None:
        return self._runtime._ddio_shares

    def set_ddio_shares(
        self, shares: Sequence[float], *, device: str, reason: str
    ) -> bool:
        return self._runtime._apply_ddio_shares(shares, device, reason)


class ControlRuntime:
    """Ticks a :class:`~repro.control.policies.Controller` over a run."""

    def __init__(
        self,
        controller: Controller,
        window_ns: float,
        loop,
    ) -> None:
        if window_ns <= 0:
            raise ValidationError(
                f"control window must be positive, got {window_ns}"
            )
        self.controller = controller
        self.window_ns = float(window_ns)
        self._loop = loop
        self._devices: list[_DeviceState] = []
        self._weights: tuple[float, ...] | None = None
        self._weight_sinks: list[Callable[[Sequence[float]], None]] = []
        self._ddio_shares: tuple[float, ...] | None = None
        self._repartition: Callable[[Sequence[float]], None] | None = None
        self.actions: list[ControlAction] = []
        self._action_listeners: list[Callable[[ControlAction], None]] = []
        self.windows_ticked = 0
        self._now = 0.0
        self.actuators = Actuators(self)

    # -- wiring (called by the fabric simulator during build) ------------------

    def add_device(
        self,
        name: str,
        index: int,
        tx_queues: Sequence[object],
        steerings: Sequence[RssSteering],
        coupling,
    ) -> None:
        """Register one device: install latency observers on its TX queues."""
        if index != len(self._devices):
            raise ValidationError(
                f"devices must be registered in index order, expected "
                f"{len(self._devices)}, got {index}"
            )
        windowed = [WindowedStats() for _ in tx_queues]
        for path, stats in zip(tx_queues, windowed):
            path.observer = stats.record
        self._devices.append(
            _DeviceState(
                name,
                index,
                windowed,
                [path.ring for path in tx_queues],
                list(steerings),
                coupling,
            )
        )

    def bind_weights(
        self,
        initial: Sequence[float],
        sinks: Sequence[Callable[[Sequence[float]], None]],
    ) -> None:
        """Enable the weights actuator (weighted multi-device runs only).

        ``sinks`` are callables applying a full per-device weight vector
        (one per compiled arbitration tree: ingress and walker).
        """
        self._weights = tuple(float(weight) for weight in initial)
        self._weight_sinks = list(sinks)

    def bind_ddio(
        self,
        shares: Sequence[float],
        repartition: Callable[[Sequence[float]], None],
    ) -> None:
        """Enable the DDIO actuator (partitioned statistical-cache runs)."""
        self._ddio_shares = tuple(float(share) for share in shares)
        self._repartition = repartition

    def start(self) -> None:
        """Schedule the first tick (call after the arrivals are fed)."""
        self._loop.at(self.window_ns, self._tick)

    def add_action_listener(
        self, listener: Callable[[ControlAction], None]
    ) -> None:
        """Invoke ``listener`` with every :class:`ControlAction` as it lands.

        Listeners fire synchronously, after the actuator has been applied
        and the action recorded.  The hybrid fluid fast-path uses this to
        drop out of fluid mode the instant any knob moves — a control
        action invalidates the steady-state certificate by construction.
        """
        self._action_listeners.append(listener)

    # -- actuation -------------------------------------------------------------

    def _log_action(self, action: ControlAction) -> None:
        self.actions.append(action)
        for listener in self._action_listeners:
            listener(action)

    def _apply_weights(
        self, weights: Sequence[float], device: str, reason: str
    ) -> bool:
        if self._weights is None or not self._weight_sinks:
            return False
        new = tuple(float(weight) for weight in weights)
        if len(new) != len(self._weights):
            raise ValidationError(
                f"need one weight per device ({len(self._weights)}), "
                f"got {len(new)}"
            )
        if new == self._weights:
            return False
        for sink in self._weight_sinks:
            sink(new)
        self._log_action(
            ControlAction(
                time_ns=self._now,
                device=device,
                actuator="weights",
                reason=reason,
                before=self._weights,
                after=new,
            )
        )
        self._weights = new
        return True

    def _apply_rss_table(
        self, device_index: int, table: Sequence[int], reason: str
    ) -> bool:
        state = self._devices[device_index]
        if not state.steerings:
            return False
        before = tuple(state.steerings[0].table)
        new = tuple(int(entry) for entry in table)
        if new == before:
            return False
        for steering in state.steerings:
            steering.set_table(new)
        self._log_action(
            ControlAction(
                time_ns=self._now,
                device=state.name,
                actuator="rss",
                reason=reason,
                before=before,
                after=new,
            )
        )
        return True

    def _apply_ddio_shares(
        self, shares: Sequence[float], device: str, reason: str
    ) -> bool:
        if self._ddio_shares is None or self._repartition is None:
            return False
        new = tuple(float(share) for share in shares)
        if len(new) != len(self._ddio_shares):
            raise ValidationError(
                f"need one share per device ({len(self._ddio_shares)}), "
                f"got {len(new)}"
            )
        if any(share <= 0 for share in new):
            raise ValidationError(f"shares must be positive, got {new}")
        if new == self._ddio_shares:
            return False
        self._repartition(new)
        self._log_action(
            ControlAction(
                time_ns=self._now,
                device=device,
                actuator="ddio",
                reason=reason,
                before=self._ddio_shares,
                after=new,
            )
        )
        self._ddio_shares = new
        return True

    # -- the tick --------------------------------------------------------------

    def _observe(self, now: float) -> list[DeviceWindow]:
        observations = []
        for state in self._devices:
            queues = []
            merged_sketch = QuantileSketch()
            merged_moments = StreamingMoments()
            ring_fill = 0.0
            for queue_index, (stats, ring) in enumerate(
                zip(state.windowed, state.rings)
            ):
                snapshot = stats.snapshot()
                fill = ring.occupancy / ring.depth
                if fill > ring_fill:
                    ring_fill = fill
                queues.append(
                    QueueWindow(
                        queue_index=queue_index,
                        snapshot=snapshot,
                        ring_fill=fill,
                    )
                )
                merged_sketch.merge(snapshot.sketch)
                merged_moments.merge(snapshot.moments)
            accesses, hits = state.coupling.descriptor_counters()
            last_accesses, last_hits = state.last_descriptor
            state.last_descriptor = (accesses, hits)
            window_accesses = accesses - last_accesses
            hit_rate = (
                (hits - last_hits) / window_accesses
                if window_accesses > 0
                else None
            )
            wait_total, busy_total = self._port_totals(state.index)
            last_wait, last_busy = state.last_port
            wait_delta = wait_total - last_wait
            busy_delta = busy_total - last_busy
            state.last_port = (wait_total, busy_total)
            steering = state.steerings[0] if state.steerings else None
            bucket_counts = (
                tuple(steering.window_buckets) if steering is not None else None
            )
            table = tuple(steering.table) if steering is not None else None
            for other in state.steerings:
                other.reset_window()
            observations.append(
                DeviceWindow(
                    device=state.name,
                    index=state.index,
                    window_index=self.windows_ticked,
                    queues=tuple(queues),
                    sketch=merged_sketch,
                    moments=merged_moments,
                    ring_fill=ring_fill,
                    descriptor_hit_rate=hit_rate,
                    wait_ns_delta=wait_delta,
                    busy_ns_delta=busy_delta,
                    window_ns=self.window_ns,
                    bucket_counts=bucket_counts,
                    rss_table=table,
                )
            )
        return observations

    #: Installed via bind_port_stats: per-device cumulative arbitration
    #: counters as ``(wait_ns_total, busy_ns_total)``.
    _port_source: Callable[[int], "tuple[float, float]"] | None = None

    def bind_port_stats(
        self, source: Callable[[int], "tuple[float, float]"]
    ) -> None:
        """Install the cumulative arbitration-counter reader (per device)."""
        self._port_source = source

    def _port_totals(self, index: int) -> tuple[float, float]:
        if self._port_source is None:
            return 0.0, 0.0
        return self._port_source(index)

    def _tick(self, now: float) -> None:
        self._now = now
        observations = self._observe(now)
        self.controller.tick(now, observations, self.actuators)
        self.windows_ticked += 1
        if self._loop.peek_time() < math.inf:
            self._loop.at(now + self.window_ns, self._tick)
