"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration problems from runtime simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid PCIe, device, or benchmark configuration was supplied."""


class ValidationError(ConfigurationError):
    """A parameter value is out of range or inconsistent with other values."""


class UsageError(ConfigurationError):
    """A command-line invocation is inconsistent (bad flag combinations).

    Raised by the CLI layer for mistakes best explained in terms of the
    flags the user typed (e.g. ``--weights 8:1`` with three ``--device``
    entries), before they can surface as a confusing library-level error.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class BenchmarkError(ReproError):
    """A micro-benchmark could not be executed with the given parameters."""


class AnalysisError(ReproError):
    """Post-processing of benchmark results failed."""


class UnknownProfileError(ConfigurationError):
    """A system profile name was requested that is not in the registry."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        self.known = list(known or [])
        msg = f"unknown system profile {name!r}"
        if self.known:
            msg += f" (known profiles: {', '.join(sorted(self.known))})"
        super().__init__(msg)
