"""Command line interface: ``pcie-bench``.

Mirrors the role of the paper's user-space control programs (§5.4): run
individual micro-benchmarks, full experiment drivers, or the entire suite,
and emit text tables, ASCII plots or machine-readable results.

Examples::

    pcie-bench model --sizes 64 256 1024
    pcie-bench run BW_RD --size 64 --window 8K --system NFP6000-HSW
    pcie-bench experiment figure-9
    pcie-bench suite --output results.json
    pcie-bench report --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.ascii_plot import ascii_plot
from .analysis.report import summary_line, write_experiments_markdown
from .analysis.table import format_series_table, format_table
from .bench.params import BenchmarkKind, BenchmarkParams
from .bench.runner import BenchmarkRunner, full_suite_params
from .core.model import PCIeModel
from .errors import ReproError
from .experiments.registry import experiment_ids, run_all, run_experiment
from .sim.profiles import profile_names
from .units import parse_size


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``pcie-bench`` command."""
    parser = argparse.ArgumentParser(
        prog="pcie-bench",
        description="PCIe performance model, simulator and micro-benchmarks "
        "(SIGCOMM 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    model = sub.add_parser("model", help="evaluate the analytical PCIe model")
    model.add_argument("--sizes", nargs="+", type=int, default=[64, 128, 256, 512, 1024, 1500])
    model.add_argument("--preset", default="gen3x8", help="PCIe configuration preset")
    model.add_argument("--plot", action="store_true", help="render an ASCII plot")

    run = sub.add_parser("run", help="run a single micro-benchmark")
    run.add_argument("kind", choices=[kind.value for kind in BenchmarkKind])
    run.add_argument("--size", type=int, default=64, help="transfer size in bytes")
    run.add_argument("--window", default="8K", help="window size (e.g. 8K, 64M)")
    run.add_argument("--system", default="NFP6000-HSW", choices=profile_names())
    run.add_argument("--cache", default="host_warm", choices=["cold", "host_warm", "device_warm"])
    run.add_argument("--placement", default="local", choices=["local", "remote"])
    run.add_argument("--iommu", action="store_true", help="enable the IOMMU")
    run.add_argument("--transactions", type=int, default=None)

    experiment = sub.add_parser("experiment", help="run one figure/table experiment")
    experiment.add_argument("id", choices=experiment_ids())
    experiment.add_argument("--full", action="store_true", help="use full sample counts")
    experiment.add_argument("--plot", action="store_true", help="render an ASCII plot")

    suite = sub.add_parser("suite", help="run a scaled-down full pcie-bench suite")
    suite.add_argument("--system", default="NFP6000-HSW", choices=profile_names())
    suite.add_argument("--output", default=None, help="write JSON results to this path")

    report = sub.add_parser("report", help="run all experiments and write EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--full", action="store_true", help="use full sample counts")

    sub.add_parser("systems", help="list the modelled Table 1 systems")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``pcie-bench`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "systems":
        return _cmd_systems()
    raise ReproError(f"unknown command {args.command!r}")  # pragma: no cover


def _cmd_model(args: argparse.Namespace) -> int:
    model = PCIeModel.from_preset(args.preset)
    curves = model.figure1_curves(tuple(args.sizes))
    print(
        format_series_table(
            curves,
            x_label="size (B)",
            title=f"Analytical model, {model.config.describe()}",
        )
    )
    if args.plot:
        print()
        print(ascii_plot(curves, x_label="transfer size (B)", y_label="Gb/s"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = BenchmarkParams(
        kind=args.kind,
        transfer_size=args.size,
        window_size=parse_size(args.window),
        cache_state=args.cache,
        placement=args.placement,
        iommu_enabled=args.iommu,
        system=args.system,
        transactions=args.transactions,
    )
    result = BenchmarkRunner().run(params)
    print(params.label())
    if result.latency is not None:
        rows = [[key, value] for key, value in result.latency.as_dict().items()]
        print(format_table(["metric", "ns"], rows))
    else:
        print(
            format_table(
                ["metric", "value"],
                [
                    ["bandwidth (Gb/s)", result.bandwidth_gbps],
                    ["transactions/s", result.transactions_per_second],
                    ["cache hit rate", result.cache_hit_rate],
                    ["IOTLB miss rate", result.iotlb_miss_rate],
                ],
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.id, quick=not args.full)
    print(result.to_text())
    if args.plot and result.series:
        print()
        print(
            ascii_plot(
                result.series,
                x_label=result.x_label,
                y_label=result.y_label,
                logx="window" in result.x_label.lower(),
            )
        )
    return 0 if result.passed else 2


def _cmd_suite(args: argparse.Namespace) -> int:
    params_list = full_suite_params(system=args.system)
    runner = BenchmarkRunner(
        progress=lambda i, total, params: print(
            f"[{i + 1}/{total}] {params.label()}", file=sys.stderr
        )
    )
    results = runner.run_all(params_list)
    print(f"ran {len(results)} benchmarks on {args.system}")
    if args.output:
        runner.save(results, args.output)
        print(f"results written to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = run_all(quick=not args.full)
    path = write_experiments_markdown(results, args.output)
    print(summary_line(results))
    print(f"report written to {path}")
    return 0


def _cmd_systems() -> int:
    from .sim.profiles import TABLE1_PROFILES

    rows = [list(profile.table1_row().values()) for profile in TABLE1_PROFILES]
    headers = list(TABLE1_PROFILES[0].table1_row().keys())
    print(format_table(headers, rows, title="Table 1 systems"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
