"""Command line interface: ``pcie-bench``.

Mirrors the role of the paper's user-space control programs (§5.4): run
individual micro-benchmarks, full experiment drivers, or the entire suite,
and emit text tables, ASCII plots or machine-readable results.

Examples::

    pcie-bench model --sizes 64 256 1024
    pcie-bench run BW_RD --size 64 --window 8K --system NFP6000-HSW
    pcie-bench nicsim --model dpdk --workload imix --load 24
    pcie-bench nicsim --model all --size 64 --compare-analytic
    pcie-bench nicsim --model dpdk --workload imix --load 24 \\
        --system NFP6000-BDW --iommu --host-window 16M
    pcie-bench nicsim --model dpdk --workload imix --queues 4 --rss zipf \\
        --dma-tags 16
    pcie-bench contend --iommu --arbiter wrr --weights 8:1 --solo-baseline
    pcie-bench contend --device name=victim,model=dpdk,load=5 \\
        --device name=aggressor,workload=imix --iommu --arbiter rr
    pcie-bench contend --iommu --topology victim=root,aggressor=sw0,sw0=root
    pcie-bench contend --iommu --arbiter sliced --quantum 16 --weights 8:1
    pcie-bench contend --iommu --ddio-partition 3:1
    pcie-bench contend --iommu --trace --trace-out trace.json
    pcie-bench nicsim --model dpdk --dma-tags 16 --trace
    pcie-bench fleet --hosts 4 --engine-profile
    pcie-bench experiment figure-10-contention
    pcie-bench experiment figure-11-topology
    pcie-bench experiment figure-8-sim
    pcie-bench experiment figure-7-9-sim
    pcie-bench experiment figure-9
    pcie-bench suite --jobs 4 --output results.json
    pcie-bench report --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.ascii_plot import ascii_plot
from .analysis.attribution import attribute_spans, format_attribution_summary
from .analysis.contention import format_contention_summary
from .analysis.control import format_control_summary
from .analysis.fleet import format_fleet_summary
from .analysis.report import summary_line, write_experiments_markdown
from .analysis.table import format_nicsim_summary, format_series_table, format_table
from .bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
    solo_device_params,
)
from .bench.fleet import FleetParams, run_fleet_benchmark
from .bench.nicsim import NicSimParams, run_nicsim_benchmark
from .bench.params import BenchmarkKind, BenchmarkParams
from .bench.results import save_results_json
from .bench.runner import BenchmarkRunner, full_suite_params
from .fleet import LOAD_PROFILES, PLACEMENT_POLICIES
from .core.model import PCIeModel
from .core.nic import FIGURE1_MODELS, model_by_name
from .errors import ReproError, UsageError, ValidationError
from .experiments.registry import experiment_ids, run_all, run_experiment
from .control import CONTROL_POLICIES
from .obs import DEFAULT_CAPACITY, Tracer
from .sim.engine import ARBITER_SCHEMES
from .sim.nicsim import cross_validate
from .sim.profiles import profile_names
from .units import parse_size
from .workloads import flow_model_names, workload_names


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``pcie-bench`` command."""
    parser = argparse.ArgumentParser(
        prog="pcie-bench",
        description="PCIe performance model, simulator and micro-benchmarks "
        "(SIGCOMM 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    model = sub.add_parser("model", help="evaluate the analytical PCIe model")
    model.add_argument("--sizes", nargs="+", type=int, default=[64, 128, 256, 512, 1024, 1500])
    model.add_argument("--preset", default="gen3x8", help="PCIe configuration preset")
    model.add_argument("--plot", action="store_true", help="render an ASCII plot")

    run = sub.add_parser("run", help="run a single micro-benchmark")
    run.add_argument("kind", choices=[kind.value for kind in BenchmarkKind])
    run.add_argument("--size", type=int, default=64, help="transfer size in bytes")
    run.add_argument("--window", default="8K", help="window size (e.g. 8K, 64M)")
    run.add_argument("--system", default="NFP6000-HSW", choices=profile_names())
    run.add_argument("--cache", default="host_warm", choices=["cold", "host_warm", "device_warm"])
    run.add_argument("--placement", default="local", choices=["local", "remote"])
    run.add_argument("--iommu", action="store_true", help="enable the IOMMU")
    run.add_argument("--transactions", type=int, default=None)

    nicsim = sub.add_parser(
        "nicsim", help="packet-level NIC datapath simulation under a traffic workload"
    )
    nicsim.add_argument(
        "--model",
        default="dpdk",
        help="NIC/driver model: simple, kernel, dpdk, all, or a full name",
    )
    nicsim.add_argument("--workload", default="fixed", choices=workload_names())
    nicsim.add_argument(
        "--size", type=int, default=1024,
        help="packet size in bytes (fixed-size workload families)",
    )
    nicsim.add_argument(
        "--load", type=float, default=None,
        help="offered load per direction in Gb/s (default: saturating)",
    )
    nicsim.add_argument("--packets", type=int, default=4000, help="packets per direction")
    nicsim.add_argument("--ring-depth", type=int, default=512)
    nicsim.add_argument(
        "--queues", type=int, default=1,
        help="TX/RX ring pairs per device (RSS flow steering when > 1)",
    )
    nicsim.add_argument(
        "--dma-tags", type=int, default=None,
        help="bounded in-flight DMA tag pool size (default: unbounded)",
    )
    nicsim.add_argument(
        "--rss", default="uniform", choices=flow_model_names(),
        help="flow scenario steering a multi-queue run: uniform spread, "
        "Zipf-skewed popularity, or a single hot flow",
    )
    nicsim.add_argument(
        "--unidirectional", action="store_true", help="TX-only traffic"
    )
    nicsim.add_argument(
        "--system", default=None, choices=profile_names(),
        help="couple the datapath to this Table 1 host model "
        "(default: link-only datapath with a flat host latency)",
    )
    nicsim.add_argument(
        "--iommu", action="store_true",
        help="translate DMA addresses through the host's IOMMU "
        "(requires --system)",
    )
    nicsim.add_argument(
        "--iommu-pagesize", default="4K",
        help="IOVA page size: 4K (sp_off), 2M or 1G super-pages",
    )
    nicsim.add_argument(
        "--host-window", default="4M",
        help="payload-buffer working set (e.g. 256K, 16M); drives cache "
        "and IOTLB pressure",
    )
    nicsim.add_argument(
        "--host-cache", default="host_warm",
        choices=["cold", "host_warm", "device_warm"],
        help="cache preparation state of the payload window",
    )
    nicsim.add_argument(
        "--placement", default="local", choices=["local", "remote"],
        help="NUMA placement of the payload buffers (requires --system "
        "with a two-socket profile)",
    )
    nicsim.add_argument(
        "--mode", default="exact", choices=["exact", "batch", "hybrid"],
        help="engine: exact (scalar event loop, the golden-verified "
        "default), batch (vectorised solver with automatic scalar "
        "fallback) or hybrid (fluid fast-path in certified steady state); "
        "batch/hybrid need numpy (install the [fast] extra)",
    )
    nicsim.add_argument("--seed", type=int, default=None)
    nicsim.add_argument(
        "--compare-analytic",
        action="store_true",
        help="also cross-validate against the analytic NIC model "
        "(fixed-size workloads)",
    )
    nicsim.add_argument(
        "--profile", action="store_true",
        help="report engine throughput (events/s) and per-phase wall "
        "time (build / events / stats) for every run",
    )
    _add_trace_flags(nicsim)

    contend = sub.add_parser(
        "contend",
        help="multi-device shared-host contention run (noisy-neighbour study)",
    )
    contend.add_argument(
        "--device",
        action="append",
        default=None,
        metavar="KEY=VALUE[,KEY=VALUE...]",
        help="add one device; keys: name, model, workload, size, load, "
        "packets, ring-depth, queues, dma-tags, rss, window, cache, seed "
        "(repeat per device; default: a latency-sensitive victim plus a "
        "bulk IMIX aggressor)",
    )
    contend.add_argument(
        "--system", default="NFP6000-HSW", choices=profile_names(),
        help="Table 1 profile of the shared host",
    )
    contend.add_argument(
        "--iommu", action="store_true",
        help="translate every device's DMAs through the shared IOMMU",
    )
    contend.add_argument(
        "--iommu-pagesize", default="4K",
        help="IOVA page size: 4K (sp_off), 2M or 1G super-pages",
    )
    contend.add_argument(
        "--arbiter", default="fcfs", choices=list(ARBITER_SCHEMES),
        help="arbitration at every fabric node: fcfs (no arbitration), rr "
        "(round-robin), wrr (weighted), age (weighted aging) or sliced "
        "(preemptible wrr quanta)",
    )
    contend.add_argument(
        "--weights", default=None,
        help="per-device weights for wrr/age/sliced, colon-separated "
        "(e.g. 8:1)",
    )
    contend.add_argument(
        "--topology", default=None,
        metavar="CHILD=PARENT[,...]",
        help="fabric tree: device and switch attachments, e.g. "
        "'victim=root,aggressor=sw0,sw0=root' (default: every device "
        "directly on the root port)",
    )
    contend.add_argument(
        "--quantum", type=float, default=None, metavar="NS",
        help="service quantum of the sliced arbiter in ns "
        "(default: the engine's quantum)",
    )
    contend.add_argument(
        "--ddio-partition", default=None, nargs="?", const="equal",
        metavar="SHARES",
        help="give each device a private slice of the DDIO/LLC capacity: "
        "'equal' (the bare flag) or colon-separated shares (e.g. 3:1); "
        "default: one shared aggregate residency",
    )
    contend.add_argument(
        "--cache-model", default="statistical",
        choices=["statistical", "faithful"],
        help="cache substrate: the fast statistical occupancy model, or "
        "the line-accurate set-associative cache (real per-owner DDIO "
        "way budgets with --ddio-partition; slow to warm beyond a few "
        "MiB of window)",
    )
    contend.add_argument(
        "--controller", default="static", choices=list(CONTROL_POLICIES),
        help="closed-loop control policy retuning the QoS knobs mid-run: "
        "static (no control plane), threshold (reactive with hysteresis) "
        "or aimd (additive-increase / multiplicative-decrease)",
    )
    contend.add_argument(
        "--control-window", type=float, default=None, metavar="NS",
        help="controller observation window in simulated ns "
        "(default: the control plane's default window)",
    )
    contend.add_argument(
        "--mode", default="exact", choices=["exact", "batch", "hybrid"],
        help="engine: exact (default), batch (falls back to exact — "
        "fabric runs always couple the host) or hybrid (fluid fast-path; "
        "control actions force packet-mode re-entry); batch/hybrid need "
        "numpy (install the [fast] extra)",
    )
    contend.add_argument("--seed", type=int, default=None)
    contend.add_argument(
        "--solo-baseline", action="store_true",
        help="also run every device alone and report slowdowns + the Jain "
        "fairness index",
    )
    contend.add_argument(
        "--detail", action="store_true",
        help="additionally print the full per-device datapath tables",
    )
    contend.add_argument(
        "--profile", action="store_true",
        help="report engine throughput (events/s) and per-phase wall "
        "time (build / events / stats) for every run",
    )
    _add_trace_flags(contend)

    fleet = sub.add_parser(
        "fleet",
        help="rack-scale fleet run: N shared hosts, streamed O(1)-memory "
        "statistics, SLO scorecard",
    )
    fleet.add_argument(
        "--hosts", type=int, default=8, help="number of shared hosts in the rack"
    )
    fleet.add_argument(
        "--placement", default="spread", choices=list(PLACEMENT_POLICIES),
        help="tenant placement: spread round-robin, or pack onto half the rack",
    )
    fleet.add_argument(
        "--tenants", type=int, default=16, help="tenant population size"
    )
    fleet.add_argument(
        "--skew", type=float, default=1.2,
        help="Zipf exponent of the tenant demand distribution (0 = uniform)",
    )
    fleet.add_argument(
        "--profile", default="flat", choices=list(LOAD_PROFILES),
        help="fleet load curve: flat steady state, diurnal cycle, or a "
        "flash crowd on the most popular tenant's host",
    )
    fleet.add_argument(
        "--rack-load", type=float, default=240.0,
        help="nominal aggressor load of the whole rack in Gb/s, split by "
        "tenant demand share",
    )
    fleet.add_argument(
        "--system", default="NFP6000-HSW", choices=profile_names(),
        help="Table 1 profile every host runs",
    )
    fleet.add_argument(
        "--arbiter", default="fcfs", choices=list(ARBITER_SCHEMES),
        help="arbitration scheme at every host's fabric nodes",
    )
    fleet.add_argument(
        "--victim-packets", type=int, default=400,
        help="packets per direction for each host's victim device",
    )
    fleet.add_argument(
        "--aggressor-packets", type=int, default=2400,
        help="packets per direction for each aggressor device",
    )
    fleet.add_argument(
        "--jobs", type=int, default=None,
        help="shard hosts over N worker processes (results bit-identical "
        "to serial)",
    )
    fleet.add_argument(
        "--threshold", type=float, action="append", default=None,
        metavar="NS",
        help="SLO threshold in ns for the scorecard (repeatable; default: "
        "thresholds spanning the rack's p99 spread)",
    )
    fleet.add_argument(
        "--output", default=None, help="write the JSON fleet record to this path"
    )
    fleet.add_argument(
        "--engine-profile", action="store_true",
        help="report engine throughput (events/s) and per-phase wall "
        "time for every host run; note --profile on this subcommand "
        "selects the fleet *load* profile, not engine profiling",
    )
    fleet.add_argument("--seed", type=int, default=None)

    experiment = sub.add_parser("experiment", help="run one figure/table experiment")
    experiment.add_argument("id", choices=experiment_ids())
    experiment.add_argument("--full", action="store_true", help="use full sample counts")
    experiment.add_argument("--plot", action="store_true", help="render an ASCII plot")

    suite = sub.add_parser("suite", help="run a scaled-down full pcie-bench suite")
    suite.add_argument("--system", default="NFP6000-HSW", choices=profile_names())
    suite.add_argument("--output", default=None, help="write JSON results to this path")
    suite.add_argument(
        "--jobs", type=int, default=None,
        help="run the suite over N worker processes (results identical to serial)",
    )
    suite.add_argument(
        "--contention", action="store_true",
        help="include the shared-host contention scenarios in the suite",
    )

    report = sub.add_parser("report", help="run all experiments and write EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--full", action="store_true", help="use full sample counts")

    sub.add_parser("systems", help="list the modelled Table 1 systems")
    return parser


def _add_trace_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the shared transaction-tracing flags to a subcommand."""
    sub.add_argument(
        "--trace", action="store_true",
        help="record one span per packet lifecycle stage and print a "
        "latency-attribution summary",
    )
    sub.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the span trace to PATH: Chrome trace-event JSON "
        "(load at ui.perfetto.dev) or JSONL when PATH ends in .jsonl "
        "(implies --trace)",
    )
    sub.add_argument(
        "--trace-limit", type=int, default=None, metavar="N",
        help="flight-recorder capacity in spans; the oldest spans are "
        f"evicted beyond it (default: {DEFAULT_CAPACITY})",
    )


def _build_tracer(args: argparse.Namespace) -> Tracer | None:
    """The tracer a ``--trace``/``--trace-out`` invocation asked for."""
    if not (args.trace or args.trace_out):
        if args.trace_limit is not None:
            raise UsageError(
                "--trace-limit has no effect without --trace or --trace-out"
            )
        return None
    capacity = (
        DEFAULT_CAPACITY if args.trace_limit is None else args.trace_limit
    )
    return Tracer(capacity=capacity)


def _emit_trace(tracer: Tracer, args: argparse.Namespace) -> None:
    """Print the attribution summary and write the requested trace file."""
    records = attribute_spans(tracer.spans)
    if records:
        print()
        print(format_attribution_summary(records))
    if tracer.evicted:
        print(
            f"trace: {tracer.evicted} spans evicted from the "
            f"{tracer.capacity}-span flight recorder (raise --trace-limit "
            "for complete traces)",
            file=sys.stderr,
        )
    if args.trace_out:
        tracer.write(args.trace_out)
        print(
            f"trace written to {args.trace_out} ({len(tracer)} spans)",
            file=sys.stderr,
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``pcie-bench`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "nicsim":
        return _cmd_nicsim(args)
    if args.command == "contend":
        return _cmd_contend(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "systems":
        return _cmd_systems()
    raise ReproError(f"unknown command {args.command!r}")  # pragma: no cover


def _cmd_model(args: argparse.Namespace) -> int:
    model = PCIeModel.from_preset(args.preset)
    curves = model.figure1_curves(tuple(args.sizes))
    print(
        format_series_table(
            curves,
            x_label="size (B)",
            title=f"Analytical model, {model.config.describe()}",
        )
    )
    if args.plot:
        print()
        print(ascii_plot(curves, x_label="transfer size (B)", y_label="Gb/s"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = BenchmarkParams(
        kind=args.kind,
        transfer_size=args.size,
        window_size=parse_size(args.window),
        cache_state=args.cache,
        placement=args.placement,
        iommu_enabled=args.iommu,
        system=args.system,
        transactions=args.transactions,
    )
    result = BenchmarkRunner().run(params)
    print(params.label())
    if result.latency is not None:
        rows = [[key, value] for key, value in result.latency.as_dict().items()]
        print(format_table(["metric", "ns"], rows))
    else:
        print(
            format_table(
                ["metric", "value"],
                [
                    ["bandwidth (Gb/s)", result.bandwidth_gbps],
                    ["transactions/s", result.transactions_per_second],
                    ["cache hit rate", result.cache_hit_rate],
                    ["IOTLB miss rate", result.iotlb_miss_rate],
                ],
            )
        )
    return 0


def _require_mode_deps(mode: str) -> None:
    """Fail ``--mode batch|hybrid`` at the flag when numpy is missing.

    The engine itself would also refuse, but deep in the run with a
    library-level message; the CLI names the flag and the extra to
    install instead.
    """
    if mode == "exact":
        return
    from .sim.fastpath import numpy_available

    if not numpy_available():
        raise UsageError(
            f"--mode {mode} needs numpy, which is not installed; "
            "install the optional extra: pip install 'pcie-bench-repro[fast]'"
        )


def _cmd_nicsim(args: argparse.Namespace) -> int:
    _require_mode_deps(args.mode)
    if args.compare_analytic and args.workload != "fixed":
        raise ReproError(
            "--compare-analytic requires the fixed-size workload "
            "(the analytic model has no notion of mixed traffic)"
        )
    if args.model.strip().lower() == "all":
        models = [model.name for model in FIGURE1_MODELS]
    else:
        models = [model_by_name(args.model).name]
    tracer = _build_tracer(args)
    records = []
    host_config = None
    for model in models:
        params = NicSimParams(
            model=model,
            workload=args.workload,
            packet_size=args.size,
            offered_load_gbps=args.load,
            packets=args.packets,
            ring_depth=args.ring_depth,
            duplex=not args.unidirectional,
            num_queues=args.queues,
            dma_tags=args.dma_tags,
            rss=args.rss,
            system=args.system,
            iommu_enabled=args.iommu,
            iommu_page_size=parse_size(args.iommu_pagesize),
            payload_window=parse_size(args.host_window),
            payload_cache_state=args.host_cache,
            payload_placement=args.placement,
            seed=args.seed,
            mode=args.mode,
        )
        host_config = params.host_config()
        print(params.label(), file=sys.stderr)
        profiles: list = [] if args.profile else None  # type: ignore[assignment]
        records.append(
            run_nicsim_benchmark(
                params,
                profile_sink=profiles,
                tracer=tracer,
                device=model if len(models) > 1 else "nic",
            ).as_dict()
        )
        if profiles:
            for profile in profiles:
                print(profile.format(), file=sys.stderr)
    print(format_nicsim_summary(records, title="NIC datapath simulation"))
    if tracer is not None:
        _emit_trace(tracer, args)
    if args.compare_analytic:
        rows = []
        for model in models:
            for point in cross_validate(
                model, (args.size,), packets=args.packets,
                ring_depth=args.ring_depth, host=host_config, seed=args.seed,
            ):
                rows.append(
                    [
                        point.model,
                        point.packet_size,
                        point.analytic_gbps,
                        point.simulated_gbps,
                        point.relative_error * 100.0,
                    ]
                )
        print()
        print(
            format_table(
                ["model", "size (B)", "analytic Gb/s", "simulated Gb/s", "error %"],
                rows,
                title="Cross-validation vs analytic model",
            )
        )
    return 0


#: Keys understood by ``--device`` specs, mapped to NicSimParams fields.
_DEVICE_SPEC_KEYS = {
    "name": ("name", str),
    "model": ("model", str),
    "workload": ("workload", str),
    "size": ("packet_size", int),
    "load": ("offered_load_gbps", float),
    "packets": ("packets", int),
    "ring-depth": ("ring_depth", int),
    "ring_depth": ("ring_depth", int),
    "queues": ("num_queues", int),
    "dma-tags": ("dma_tags", int),
    "dma_tags": ("dma_tags", int),
    "rss": ("rss", str),
    "window": ("payload_window", parse_size),
    "cache": ("payload_cache_state", str),
    "seed": ("seed", int),
}


def _parse_device_spec(text: str) -> tuple[str | None, NicSimParams]:
    """Parse one ``--device`` value into (name, per-device parameters)."""
    fields: dict[str, object] = {}
    name: str | None = None
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(
                f"device spec entry {part!r} is not KEY=VALUE"
            )
        key, _, value = part.partition("=")
        key = key.strip().lower()
        if key not in _DEVICE_SPEC_KEYS:
            raise ValidationError(
                f"unknown device spec key {key!r}; valid: "
                + ", ".join(sorted(set(_DEVICE_SPEC_KEYS)))
            )
        field, coerce = _DEVICE_SPEC_KEYS[key]
        if field == "name":
            name = value.strip()
            continue
        try:
            fields[field] = coerce(value.strip())  # type: ignore[operator]
        except ValueError as exc:
            raise ValidationError(
                f"bad value for device spec key {key!r}: {value.strip()!r}"
            ) from exc
    return name, NicSimParams(**fields)  # type: ignore[arg-type]


def _cmd_contend(args: argparse.Namespace) -> int:
    _require_mode_deps(args.mode)
    if args.device:
        specs = [_parse_device_spec(text) for text in args.device]
        devices = tuple(params for _, params in specs)
        names = tuple(
            name if name is not None else f"dev{index}"
            for index, (name, _) in enumerate(specs)
        )
    else:
        devices = noisy_neighbour_pair()
        names = ("victim", "aggressor")
    weights = None
    if args.weights is not None:
        try:
            weights = tuple(
                float(part) for part in args.weights.split(":") if part
            )
        except ValueError as exc:
            raise ValidationError(
                f"--weights must be colon-separated numbers (e.g. 8:1), "
                f"got {args.weights!r}"
            ) from exc
        if len(weights) != len(devices):
            raise UsageError(
                f"--weights names {len(weights)} "
                f"weight{'s' if len(weights) != 1 else ''} "
                f"({args.weights}) but the run has {len(devices)} devices "
                f"({', '.join(names)}); pass one colon-separated weight "
                "per device, e.g. "
                + ":".join("1" for _ in names)
            )
    ddio_partition = None
    if args.ddio_partition is not None:
        text = args.ddio_partition.strip().lower()
        if text == "equal":
            ddio_partition = (1.0,) * len(devices)
        else:
            try:
                ddio_partition = tuple(
                    float(part) for part in text.split(":") if part
                )
            except ValueError as exc:
                raise ValidationError(
                    f"--ddio-partition must be 'equal' or colon-separated "
                    f"shares (e.g. 3:1), got {args.ddio_partition!r}"
                ) from exc
            if len(ddio_partition) != len(devices):
                raise UsageError(
                    f"--ddio-partition names {len(ddio_partition)} shares "
                    f"({args.ddio_partition}) but the run has "
                    f"{len(devices)} devices ({', '.join(names)})"
                )
    params = ContentionParams(
        devices=devices,
        names=names,
        system=args.system,
        iommu_enabled=args.iommu,
        iommu_page_size=parse_size(args.iommu_pagesize),
        arbiter=args.arbiter,
        weights=weights,
        topology=args.topology,
        quantum_ns=args.quantum,
        ddio_partition=ddio_partition,
        cache_model=args.cache_model,
        controller=args.controller,
        control_window_ns=args.control_window,
        mode=args.mode,
        seed=args.seed,
    )
    print(params.label(), file=sys.stderr)
    profiles: list = [] if args.profile else None  # type: ignore[assignment]
    tracer = _build_tracer(args)
    result = run_contention_benchmark(
        params, profile_sink=profiles, tracer=tracer
    )
    if profiles:
        for profile in profiles:
            print(profile.format(), file=sys.stderr)
    solo = None
    if args.solo_baseline:
        solo = {}
        for index, name in enumerate(params.device_names()):
            print(f"solo baseline: {name}", file=sys.stderr)
            solo[name] = run_nicsim_benchmark(
                solo_device_params(params, index)
            ).as_dict()
    print(format_contention_summary(result.as_dict(), solo=solo))
    if result.controller != "static":
        print()
        print(format_control_summary(result.as_dict()))
    if args.detail:
        for device in result.devices:
            print()
            print(
                format_nicsim_summary(
                    [device.result.as_dict()],
                    title=f"Device detail: {device.name}",
                )
            )
    if tracer is not None:
        _emit_trace(tracer, args)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.jobs is not None and args.jobs < 1:
        raise UsageError(
            f"--jobs must be at least 1, got {args.jobs} "
            "(omit the flag to run serially)"
        )
    params = FleetParams(
        hosts=args.hosts,
        placement=args.placement,
        tenants=args.tenants,
        tenant_skew=args.skew,
        load_profile=args.profile,
        rack_load_gbps=args.rack_load,
        system=args.system,
        arbiter=args.arbiter,
        victim_packets=args.victim_packets,
        aggressor_packets=args.aggressor_packets,
        seed=args.seed,
    )
    print(params.label(), file=sys.stderr)
    engine_profiles: list = [] if args.engine_profile else None  # type: ignore[assignment]
    result = run_fleet_benchmark(
        params, jobs=args.jobs, profile_sink=engine_profiles
    )
    if engine_profiles:
        for profile in engine_profiles:
            print(profile.format(), file=sys.stderr)
    print(
        format_fleet_summary(result.as_dict(), thresholds_ns=args.threshold)
    )
    if args.output:
        save_results_json([result], args.output)
        print(f"fleet record written to {args.output}", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.id, quick=not args.full)
    print(result.to_text())
    if args.plot and result.series:
        print()
        print(
            ascii_plot(
                result.series,
                x_label=result.x_label,
                y_label=result.y_label,
                logx="window" in result.x_label.lower(),
            )
        )
    return 0 if result.passed else 2


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.jobs is not None and args.jobs < 1:
        raise UsageError(
            f"--jobs must be at least 1, got {args.jobs} "
            "(omit the flag to run serially)"
        )
    params_list = full_suite_params(
        system=args.system, include_contention=args.contention
    )
    contention_count = sum(
        1 for params in params_list if isinstance(params, ContentionParams)
    )
    print(
        f"suite: {len(params_list)} unique benchmarks on {args.system}"
        + (
            f" ({contention_count} shared-host contention scenarios)"
            if contention_count
            else ""
        )
        + (f", {args.jobs} worker processes" if args.jobs else ""),
        file=sys.stderr,
    )
    runner = BenchmarkRunner(
        progress=lambda i, total, params: print(
            f"[{i + 1}/{total}] {params.label()}", file=sys.stderr
        )
    )
    results = runner.run_all(params_list, jobs=args.jobs)
    print(f"ran {len(results)} benchmarks on {args.system}")
    if args.output:
        runner.save(results, args.output)
        print(f"results written to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = run_all(quick=not args.full)
    path = write_experiments_markdown(results, args.output)
    print(summary_line(results))
    print(f"report written to {path}")
    return 0


def _cmd_systems() -> int:
    from .sim.profiles import TABLE1_PROFILES

    rows = [list(profile.table1_row().values()) for profile in TABLE1_PROFILES]
    headers = list(TABLE1_PROFILES[0].table1_row().keys())
    print(format_table(headers, rows, title="Table 1 systems"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
