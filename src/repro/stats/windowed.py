"""Windowed snapshots over the streaming estimators.

The control plane observes *per-window deltas*, not cumulative totals: a
controller that ticks every 50 µs must see the latency distribution of
the last window alone, while the run's final result still reports the
cumulative sketch over every packet.  :class:`WindowedStats` keeps both
views without double-recording: ``record`` feeds only the current
window's :class:`~repro.stats.sketch.QuantileSketch` and
:class:`~repro.stats.moments.StreamingMoments`, and ``snapshot`` freezes
the window, folds it into the cumulative accumulators, and starts a new
one.

The cumulative view is therefore *defined* as the in-window-order merge
of the snapshots.  That makes the windowed decomposition exact — merging
the snapshot sequence in window order reproduces the cumulative sketch
and moments bit for bit, float accumulators included — which the
property suite pins.

An empty window (zero packets between ticks) is a legal, well-defined
snapshot with ``count == 0``; callers must check ``count`` before asking
for quantiles, exactly as with an empty sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from .moments import StreamingMoments
from .sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch


@dataclass(frozen=True)
class WindowSnapshot:
    """One frozen window: its sketch, its moments, and its position."""

    index: int
    sketch: QuantileSketch
    moments: StreamingMoments

    @property
    def count(self) -> int:
        """Values recorded in this window (0 for an empty window)."""
        return self.sketch.count

    def quantile(self, q: float) -> float:
        """The window's ``q``-quantile (raises on an empty window)."""
        return self.sketch.quantile(q)


class WindowedStats:
    """A quantile sketch + moments pair with snapshot-and-reset windows."""

    __slots__ = ("relative_accuracy", "_window_sketch", "_window_moments",
                 "_cumulative_sketch", "_cumulative_moments", "_window_index")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY) -> None:
        self.relative_accuracy = float(relative_accuracy)
        self._window_sketch = QuantileSketch(self.relative_accuracy)
        self._window_moments = StreamingMoments()
        self._cumulative_sketch = QuantileSketch(self.relative_accuracy)
        self._cumulative_moments = StreamingMoments()
        self._window_index = 0

    # -- ingest ----------------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one value into the current window."""
        self._window_sketch.add(value)
        self._window_moments.push(value)

    # -- windows ---------------------------------------------------------------

    @property
    def window_count(self) -> int:
        """Values recorded in the current (unfrozen) window."""
        return self._window_sketch.count

    @property
    def window_index(self) -> int:
        """Index the next :meth:`snapshot` will carry."""
        return self._window_index

    def snapshot(self) -> WindowSnapshot:
        """Freeze the current window and start a new one.

        The frozen window is folded into the cumulative accumulators
        before the reset, so the cumulative view is exactly the in-order
        merge of every snapshot taken so far.  An empty window yields a
        ``count == 0`` snapshot rather than raising.
        """
        frozen = WindowSnapshot(
            index=self._window_index,
            sketch=self._window_sketch,
            moments=self._window_moments,
        )
        self._cumulative_sketch.merge(self._window_sketch)
        self._cumulative_moments.merge(self._window_moments)
        self._window_sketch = QuantileSketch(self.relative_accuracy)
        self._window_moments = StreamingMoments()
        self._window_index += 1
        return frozen

    # -- cumulative view -------------------------------------------------------

    def cumulative(self) -> tuple[QuantileSketch, StreamingMoments]:
        """The cumulative sketch and moments including the open window.

        Returns independent copies so callers can query (or serialise)
        them without disturbing the live window decomposition.
        """
        sketch = self._cumulative_sketch.copy()
        moments = self._cumulative_moments.copy()
        sketch.merge(self._window_sketch)
        moments.merge(self._window_moments)
        return sketch, moments

    @property
    def count(self) -> int:
        """Total values recorded across all windows, open window included."""
        return self._cumulative_sketch.count + self._window_sketch.count

    def __repr__(self) -> str:
        return (
            f"WindowedStats(windows={self._window_index}, "
            f"count={self.count}, open={self.window_count})"
        )


__all__ = ["WindowSnapshot", "WindowedStats", "ValidationError"]
