"""A DDSketch-style quantile sketch with a relative-error guarantee.

The sketch covers positive values with geometrically sized buckets: value
``x`` lands in bucket ``ceil(log(x) / log(gamma))`` where
``gamma = (1 + a) / (1 - a)`` and ``a`` is the configured relative
accuracy.  Reporting the mid-point ``2 * gamma**i / (gamma + 1)`` of
bucket ``i`` then guarantees a relative error of at most ``a`` for every
quantile of the values actually inserted (up to float rounding exactly at
bucket boundaries).  With the default ``a = 0.005`` the sketch answers
p50/p90/p99/p99.9 within **0.5%** of the corresponding exact order
statistic, comfortably inside the 1% budget the fleet experiments assert.

Quantiles are nearest-rank: ``quantile(q)`` estimates the order statistic
at index ``floor(q * (count - 1))`` of the sorted inserted values — the
same element ``numpy.percentile(..., method="lower")`` returns — so the
bound is against a concrete sample, not an interpolated value.

Memory is O(number of occupied buckets), which is bounded by the dynamic
range of the data (one bucket per ~0.5% step), **not** by the number of
inserted values: nanosecond latencies spanning six decades occupy at most
``6 * ln(10) / ln(gamma)`` ≈ 1400 buckets, and real runs use far fewer.
Count, sum, min and max are tracked exactly, so ``mean``, ``minimum`` and
``maximum`` carry no sketch error at all.

``merge`` adds integer bucket counts, which makes quantile estimates
*exact* under any merge order or grouping — the property the fleet's
``jobs=1 == jobs=N`` bit-identity contract rests on.  The float ``sum``
accumulator is merged in call order; the fleet reduce always merges in
host-index order, keeping even ``mean`` bit-stable.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..errors import ValidationError

#: Default relative accuracy: 0.5%, half the 1% acceptance budget used by
#: the figure-12 fleet experiment.
DEFAULT_RELATIVE_ACCURACY = 0.005

#: Values at or below this threshold are folded into a dedicated zero
#: bucket (log-buckets cannot represent 0).  Latencies are nanoseconds,
#: so anything below a femtosecond is zero for every practical purpose.
MIN_TRACKED_VALUE = 1e-6


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch for non-negative values."""

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValidationError(
                f"relative accuracy must be within (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + self.relative_accuracy) / (1.0 - self.relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingest ----------------------------------------------------------------

    def add(self, value: float) -> None:
        """Insert one non-negative value."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValidationError(
                f"sketch values must be finite and non-negative, got {value}"
            )
        if value <= MIN_TRACKED_VALUE:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Iterable[float]) -> None:
        """Insert values one at a time (bit-identical to repeated :meth:`add`)."""
        for value in values:
            self.add(value)

    def add_array(self, values) -> None:
        """Insert a dense array of values in a handful of vector passes.

        The batch engine's scatter-back call: bucket indices, counts and
        the running ``sum`` are computed with numpy, keeping the ingest
        cost O(uniques + buckets) instead of O(n) interpreter dispatches.
        The ``sum`` accumulates strictly left-to-right (like repeated
        :meth:`add`); bucket indices use ``numpy.log``, which may differ
        from ``math.log`` in the last ulp exactly at a bucket boundary —
        within the sketch's stated relative-error guarantee either way.
        Falls back to :meth:`add_many` when numpy is unavailable.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a test-env dep
            self.add_many(values)
            return
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        bad = ~np.isfinite(arr) | (arr < 0.0)
        if bad.any():
            value = float(arr[bad][0])
            raise ValidationError(
                f"sketch values must be finite and non-negative, got {value}"
            )
        tracked = arr[arr > MIN_TRACKED_VALUE]
        self._zero_count += int(arr.size - tracked.size)
        if tracked.size:
            indices = np.ceil(
                np.log(tracked) / self._log_gamma
            ).astype(np.int64)
            uniques, counts = np.unique(indices, return_counts=True)
            buckets = self._buckets
            for index, count in zip(uniques.tolist(), counts.tolist()):
                buckets[index] = buckets.get(index, 0) + count
        self._count += int(arr.size)
        self._sum = float(
            np.add.accumulate(np.concatenate(([self._sum], arr)))[-1]
        )
        low = float(arr.min())
        high = float(arr.max())
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high

    # -- queries ---------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of inserted values (exact)."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact mean of the inserted values."""
        if self._count == 0:
            raise ValidationError("cannot query statistics of an empty sketch")
        return self._sum / self._count

    @property
    def minimum(self) -> float:
        """Exact minimum of the inserted values."""
        if self._count == 0:
            raise ValidationError("cannot query statistics of an empty sketch")
        return self._min

    @property
    def maximum(self) -> float:
        """Exact maximum of the inserted values."""
        if self._count == 0:
            raise ValidationError("cannot query statistics of an empty sketch")
        return self._max

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the sketch's memory footprint in O() terms."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (nearest rank, ``0 <= q <= 1``).

        The estimate is within ``relative_accuracy`` of the exact order
        statistic at index ``floor(q * (count - 1))``; ``q=0`` and ``q=1``
        return the exact minimum and maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be within [0, 1], got {q}")
        if self._count == 0:
            raise ValidationError("cannot query quantiles of an empty sketch")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = math.floor(q * (self._count - 1))
        if rank < self._zero_count:
            # The zero bucket holds every value in [0, MIN_TRACKED_VALUE],
            # not just exact zeros — clamp into [min, max] like the
            # log-bucket path, so e.g. a sketch fed only 1e-6 reports 1e-6
            # rather than a flat 0.0 (a 100% relative error).
            return min(max(0.0, self._min), self._max)
        cumulative = self._zero_count
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > rank:
                estimate = 2.0 * self._gamma**index / (self._gamma + 1.0)
                return min(max(estimate, self._min), self._max)
        # Unreachable: cumulative counts sum to _count > rank.
        return self._max  # pragma: no cover

    # -- merge / copy ----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place (and return ``self``).

        Bucket counts are integers, so the merged quantile estimates are
        identical for any merge order or grouping of the same inputs.
        """
        if not isinstance(other, QuantileSketch):
            raise ValidationError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        if other.relative_accuracy != self.relative_accuracy:
            raise ValidationError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} != {other.relative_accuracy})"
            )
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "QuantileSketch":
        """An independent copy (mutating one never affects the other)."""
        clone = QuantileSketch(self.relative_accuracy)
        clone._buckets = dict(self._buckets)
        clone._zero_count = self._zero_count
        clone._count = self._count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    # -- serialisation ---------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form (exact round trip via :meth:`from_dict`)."""
        record: dict[str, object] = {
            "relative_accuracy": self.relative_accuracy,
            "count": self._count,
            "zero_count": self._zero_count,
            "sum": self._sum,
            "buckets": {str(index): self._buckets[index] for index in sorted(self._buckets)},
        }
        if self._count:
            record["min"] = self._min
            record["max"] = self._max
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch serialised by :meth:`as_dict`."""
        sketch = cls(float(record.get("relative_accuracy", DEFAULT_RELATIVE_ACCURACY)))
        count = int(record.get("count", 0))
        zero_count = int(record.get("zero_count", 0))
        if count < 0:
            raise ValidationError(
                f"sketch record field 'count' must be >= 0, got {count}"
            )
        if zero_count < 0:
            raise ValidationError(
                f"sketch record field 'zero_count' must be >= 0, got {zero_count}"
            )
        sketch._count = count
        sketch._zero_count = zero_count
        sketch._sum = float(record.get("sum", 0.0))
        buckets = record.get("buckets", {})
        if not isinstance(buckets, Mapping):
            raise ValidationError("sketch record field 'buckets' must be a mapping")
        sketch._buckets = {}
        for index, bucket_count in buckets.items():
            bucket_count = int(bucket_count)
            if bucket_count < 0:
                raise ValidationError(
                    f"sketch record bucket {index!r} has negative count {bucket_count}"
                )
            sketch._buckets[int(index)] = bucket_count
        if sketch._count:
            if "min" not in record or "max" not in record:
                raise ValidationError(
                    "sketch record with count > 0 must carry 'min' and 'max'"
                )
            sketch._min = float(record["min"])  # type: ignore[index]
            sketch._max = float(record["max"])  # type: ignore[index]
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self._count == other._count
            and self._zero_count == other._zero_count
            and self._sum == other._sum
            and self._min == other._min
            and self._max == other._max
            and self._buckets == other._buckets
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(relative_accuracy={self.relative_accuracy}, "
            f"count={self._count}, buckets={self.bucket_count})"
        )
