"""Seeded, mergeable reservoir sampling by hashed priority.

A classic reservoir sampler draws a random number per item, which makes
the kept sample depend on arrival order and on how the stream was split
across shards.  :class:`ReservoirSample` instead assigns every item a
deterministic 64-bit priority — a splitmix64 hash of ``(seed, tag)``
where ``tag`` is the item's position in its shard's stream — and keeps
the ``capacity`` items with the *smallest* priorities (bottom-k).

Because the priority is a pure function of ``(seed, tag)``:

* the same seed and the same stream always keep the same sample
  (seeded determinism);
* ``merge`` (union, then keep the k smallest priorities again) is
  associative and commutative, so shard samples combine into exactly the
  set a single sampler over the concatenated streams would have kept —
  provided shards use distinct seeds or disjoint tag ranges, which the
  fleet guarantees by seeding each host's reservoir from its own RNG
  substream.

The kept items are returned in priority order (:meth:`values`), giving a
stable, uniformly random subset of the stream for trace capture.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import ValidationError

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _splitmix64(value: int) -> int:
    """The splitmix64 finaliser: a high-quality 64-bit integer hash."""
    value = (value + 0x9E37_79B9_7F4A_7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58_476D_1CE4_E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D0_49BB_1331_11EB) & _MASK64
    return value ^ (value >> 31)


class ReservoirSample:
    """Bottom-k reservoir of floats with deterministic hashed priorities."""

    __slots__ = ("capacity", "seed", "_next_tag", "_offered", "_items")

    def __init__(self, capacity: int, seed: int) -> None:
        if capacity <= 0:
            raise ValidationError(f"capacity must be positive, got {capacity}")
        if not isinstance(seed, int):
            raise ValidationError(f"seed must be an integer, got {seed!r}")
        self.capacity = int(capacity)
        self.seed = int(seed) & _MASK64
        self._next_tag = 0
        self._offered = 0
        # (priority, seed, tag, value) tuples; the seed/tag fields break
        # priority ties deterministically across merged shards.
        self._items: list[tuple[int, int, int, float]] = []

    # -- ingest ----------------------------------------------------------------

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        tag = self._next_tag
        self._next_tag += 1
        self._offered += 1
        priority = _splitmix64(_splitmix64(self.seed) ^ tag)
        self._offer((priority, self.seed, tag, float(value)))

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _offer(self, item: tuple[int, int, int, float]) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
            self._items.sort()
            return
        if item[:3] < self._items[-1][:3]:
            self._items[-1] = item
            self._items.sort()

    # -- queries ---------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total values offered (not kept) across all merged shards.

        Assumes merged shards sampled *disjoint* streams (distinct seeds
        or tag ranges) — the fleet's per-host substreams guarantee this.
        """
        return self._offered

    def values(self) -> list[float]:
        """The kept sample, in priority order (stable across runs)."""
        return [item[3] for item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Fold ``other``'s kept items into this reservoir in place.

        Associative and commutative: the result keeps the ``capacity``
        smallest priorities of the union, regardless of merge order.

        Union semantics require the two reservoirs to have sampled
        different streams.  Merging a reservoir into itself is rejected
        outright (it would double ``count`` and duplicate every kept
        item), and exact ``(priority, seed, tag)`` collisions — shards
        that shared a seed over overlapping tag ranges — are deduped,
        with ``count`` reduced by the overlap so it still estimates the
        union's offered total.
        """
        if not isinstance(other, ReservoirSample):
            raise ValidationError(
                f"can only merge ReservoirSample, got {type(other).__name__}"
            )
        if other is self:
            raise ValidationError(
                "cannot merge a reservoir with itself: merge is a stream "
                "union and would double every kept item and the offered count"
            )
        if other.capacity != self.capacity:
            raise ValidationError(
                "cannot merge reservoirs with different capacities "
                f"({self.capacity} != {other.capacity})"
            )
        own_keys = {item[:3] for item in self._items}
        duplicates = sum(1 for item in other._items if item[:3] in own_keys)
        merged = sorted(
            self._items
            + [item for item in other._items if item[:3] not in own_keys]
        )
        self._items = merged[: self.capacity]
        self._next_tag = max(self._next_tag, other._next_tag)
        self._offered += other._offered - duplicates
        return self

    def copy(self) -> "ReservoirSample":
        clone = ReservoirSample(self.capacity, self.seed)
        clone._next_tag = self._next_tag
        clone._offered = self._offered
        clone._items = list(self._items)
        return clone

    # -- serialisation ---------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "offered": self._offered,
            "next_tag": self._next_tag,
            "items": [list(item) for item in self._items],
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "ReservoirSample":
        reservoir = cls(int(record["capacity"]), int(record["seed"]))  # type: ignore[index]
        offered = int(record.get("offered", 0))
        if offered < 0:
            raise ValidationError(
                f"reservoir record field 'offered' must be >= 0, got {offered}"
            )
        next_tag = int(record.get("next_tag", offered))
        if next_tag < 0:
            raise ValidationError(
                f"reservoir record field 'next_tag' must be >= 0, got {next_tag}"
            )
        reservoir._offered = offered
        reservoir._next_tag = next_tag
        items = record.get("items", [])
        if not isinstance(items, Sequence):
            raise ValidationError("reservoir record field 'items' must be a list")
        parsed: list[tuple[int, int, int, float]] = []
        for position, item in enumerate(items):
            if not isinstance(item, Sequence) or len(item) != 4:
                raise ValidationError(
                    f"reservoir record item {position} must be a "
                    "(priority, seed, tag, value) 4-tuple"
                )
            priority, item_seed, tag = int(item[0]), int(item[1]), int(item[2])
            if priority < 0 or item_seed < 0 or tag < 0:
                raise ValidationError(
                    f"reservoir record item {position} has negative "
                    "priority/seed/tag fields"
                )
            parsed.append((priority, item_seed, tag, float(item[3])))
        if len(parsed) > reservoir.capacity:
            raise ValidationError(
                f"reservoir record keeps {len(parsed)} items, above its "
                f"capacity {reservoir.capacity}"
            )
        reservoir._items = parsed
        reservoir._items.sort()
        return reservoir

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReservoirSample):
            return NotImplemented
        return (
            self.capacity == other.capacity
            and self._items == other._items
        )

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(capacity={self.capacity}, kept={len(self._items)}, "
            f"offered={self._offered})"
        )
