"""Mergeable, O(1)-memory streaming statistics.

Fleet-scale sweeps (:mod:`repro.fleet`) simulate racks of hosts whose
aggregate packet counts cannot be summarised by keeping every latency
sample in a numpy array the way single-host results historically did.
This package provides the three streaming estimators the fleet layer (and
the ``retain_samples=False`` simulator mode) build on:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile sketch
  with a documented relative-error bound (default 0.5%), exact count /
  sum / min / max, and an order-insensitive integer-bucket ``merge``;
* :class:`StreamingMoments` — Welford mean/variance with Chan's parallel
  merge, for cheap dispersion estimates without any sample storage;
* :class:`ReservoirSample` — seeded bottom-k reservoir sampling by hashed
  priority, so shards can each keep a small deterministic trace sample
  and ``merge`` reproduces the sample a single pass would have kept;
* :class:`WindowedStats` — a sketch + moments pair that snapshots and
  resets on a window boundary without disturbing the cumulative view,
  the per-window observation signal the control plane ticks on.

Every estimator is serialisable (``as_dict``/``from_dict``) and supports
``merge`` so per-shard results combine deterministically: quantile
estimates depend only on integer bucket counts, which makes them exact
under any merge order, and the fleet reduce step merges shards in fixed
host order so even float accumulators (sum, M2) are bit-stable.
"""

from .moments import StreamingMoments
from .reservoir import ReservoirSample
from .sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from .windowed import WindowSnapshot, WindowedStats

__all__ = [
    "DEFAULT_RELATIVE_ACCURACY",
    "QuantileSketch",
    "ReservoirSample",
    "StreamingMoments",
    "WindowSnapshot",
    "WindowedStats",
]
