"""Streaming mean/variance via Welford's algorithm with Chan's merge.

:class:`StreamingMoments` keeps count, mean and the centred second moment
(M2) in O(1) memory.  ``push`` is the classic numerically stable Welford
update; ``merge`` is Chan et al.'s pairwise combination, so shards can
compute moments independently and combine them.  Unlike the integer
bucket counts of :class:`~repro.stats.sketch.QuantileSketch`, the float
accumulators here are only bit-stable for a *fixed* merge order — the
fleet reduce merges shards in host-index order for exactly that reason.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..errors import ValidationError


class StreamingMoments:
    """O(1)-memory count / mean / variance / min / max accumulator."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingest ----------------------------------------------------------------

    def push(self, value: float) -> None:
        """Fold one value into the running moments (Welford update)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"moment values must be finite, got {value}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def push_many(self, values: Iterable[float]) -> None:
        """Fold values one at a time (bit-identical to repeated :meth:`push`)."""
        for value in values:
            self.push(value)

    # -- queries ---------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValidationError("cannot query statistics of empty moments")
        return self._mean

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValidationError("cannot query statistics of empty moments")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValidationError("cannot query statistics of empty moments")
        return self._max

    @property
    def variance(self) -> float:
        """Population variance of the values pushed so far.

        Clamped at 0.0: merging a shard record whose second moment was
        computed with a cancellation-prone formula (sum-of-squares) can
        leave ``_m2`` a hair below zero, and ``std`` must never raise
        ``math domain error`` over a rounding artefact.
        """
        if self._count == 0:
            raise ValidationError("cannot query statistics of empty moments")
        variance = self._m2 / self._count
        return variance if variance > 0.0 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` into this accumulator in place (Chan's formula)."""
        if not isinstance(other, StreamingMoments):
            raise ValidationError(
                f"can only merge StreamingMoments, got {type(other).__name__}"
            )
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / total
        )
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "StreamingMoments":
        clone = StreamingMoments()
        clone._count = self._count
        clone._mean = self._mean
        clone._m2 = self._m2
        clone._min = self._min
        clone._max = self._max
        return clone

    # -- serialisation ---------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
        }
        if self._count:
            record["min"] = self._min
            record["max"] = self._max
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "StreamingMoments":
        moments = cls()
        count = int(record.get("count", 0))
        if count < 0:
            raise ValidationError(
                f"moments record field 'count' must be >= 0, got {count}"
            )
        moments._count = count
        moments._mean = float(record.get("mean", 0.0))
        moments._m2 = float(record.get("m2", 0.0))
        if moments._count:
            if "min" not in record or "max" not in record:
                raise ValidationError(
                    "moments record with count > 0 must carry 'min' and 'max'"
                )
            moments._min = float(record["min"])  # type: ignore[index]
            moments._max = float(record["max"])  # type: ignore[index]
        return moments

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingMoments):
            return NotImplemented
        return (
            self._count == other._count
            and self._mean == other._mean
            and self._m2 == other._m2
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        return f"StreamingMoments(count={self._count})"
