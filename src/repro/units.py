"""Unit helpers used throughout the library.

The paper (and therefore this library) mixes several unit systems:

* sizes in bytes, with power-of-two multiples (KiB, MiB) for buffers and
  cache sizes, and decimal byte counts for transfer sizes;
* bandwidth in Gb/s (decimal, as used for Ethernet and PCIe marketing
  numbers) and bytes per nanosecond internally;
* time in nanoseconds (the natural unit for PCIe transactions) and seconds
  for wall-clock style results.

These helpers keep conversions explicit and in one place.
"""

from __future__ import annotations

import re

from .errors import ValidationError

# ---------------------------------------------------------------------------
# Byte sizes
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: Size of a host cache line in bytes on every system studied by the paper.
CACHELINE_BYTES = 64

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KB,
    "kib": KIB,
    "m": MIB,
    "mb": MB,
    "mib": MIB,
    "g": GIB,
    "gb": GB,
    "gib": GIB,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human-readable size such as ``"64"``, ``"8K"`` or ``"64MiB"``.

    Bare ``K``/``M``/``G`` suffixes are binary multiples (matching how the
    paper labels window sizes, e.g. ``256K`` meaning 256 KiB); explicit
    ``KB``/``MB``/``GB`` are decimal and ``KiB``/``MiB``/``GiB`` binary.

    Args:
        text: the size string, or an integer which is returned unchanged.

    Returns:
        The size in bytes.

    Raises:
        ValidationError: if the string cannot be parsed.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValidationError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(str(text))
    if not match:
        raise ValidationError(f"cannot parse size {text!r}")
    value, suffix = match.groups()
    multiplier = _SIZE_SUFFIXES.get(suffix.lower())
    if multiplier is None:
        raise ValidationError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(value) * multiplier)


def format_size(size: int) -> str:
    """Format a byte count using binary multiples, e.g. ``65536 -> "64K"``.

    The output matches the axis labels used in the paper's figures.
    """
    if size < 0:
        raise ValidationError(f"size must be non-negative, got {size}")
    if size >= GIB and size % GIB == 0:
        return f"{size // GIB}G"
    if size >= MIB and size % MIB == 0:
        return f"{size // MIB}M"
    if size >= KIB and size % KIB == 0:
        return f"{size // KIB}K"
    return f"{size}B"


def cachelines_spanned(offset: int, size: int, line: int = CACHELINE_BYTES) -> int:
    """Number of cache lines touched by an access of ``size`` bytes at ``offset``.

    Used both by the host-buffer unit layout (Figure 3: a unit is offset plus
    transfer size rounded up to the next cache line) and by the cache model.
    """
    if size < 0 or offset < 0:
        raise ValidationError("offset and size must be non-negative")
    if size == 0:
        return 0
    first = offset // line
    last = (offset + size - 1) // line
    return last - first + 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValidationError(f"alignment must be positive, got {alignment}")
    return ((value + alignment - 1) // alignment) * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValidationError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / NS_PER_US


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def format_ns(ns: float) -> str:
    """Format a duration in ns using the most readable unit."""
    if ns < 0:
        return f"-{format_ns(-ns)}"
    if ns < 1_000:
        return f"{ns:.0f}ns"
    if ns < NS_PER_MS:
        return f"{ns / NS_PER_US:.2f}us"
    if ns < NS_PER_S:
        return f"{ns / NS_PER_MS:.2f}ms"
    return f"{ns / NS_PER_S:.3f}s"


# ---------------------------------------------------------------------------
# Bandwidth
# ---------------------------------------------------------------------------


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a decimal Gb/s figure into bytes per nanosecond.

    1 Gb/s = 1e9 bits/s = 0.125e9 bytes/s = 0.125 bytes/ns.
    """
    return gbps * 0.125


def bytes_per_ns_to_gbps(bytes_per_ns: float) -> float:
    """Convert bytes per nanosecond into decimal Gb/s."""
    return bytes_per_ns * 8.0


def bytes_over_time_to_gbps(num_bytes: float, duration_ns: float) -> float:
    """Throughput in Gb/s for ``num_bytes`` transferred in ``duration_ns``."""
    if duration_ns <= 0:
        raise ValidationError(f"duration must be positive, got {duration_ns}")
    return bytes_per_ns_to_gbps(num_bytes / duration_ns)


def transactions_per_second(count: int, duration_ns: float) -> float:
    """Transaction rate for ``count`` operations in ``duration_ns``."""
    if duration_ns <= 0:
        raise ValidationError(f"duration must be positive, got {duration_ns}")
    return count / ns_to_s(duration_ns)
