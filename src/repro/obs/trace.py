"""Span-based transaction tracer with flight-recorder semantics.

A :class:`Tracer` records one :class:`Span` per lifecycle stage of each
traced packet.  The per-packet taxonomy partitions the end-to-end latency
into four contiguous stages — their durations sum to exactly
``notify - arrival`` for every delivered packet:

========== ==========================================================
stage      covers
========== ==========================================================
``ring``   arrival → descriptor-ring admit (backpressure wait; 0 when
           a slot is free on arrival)
``issue``  ring post → payload-DMA dispatch (doorbell/descriptor-DMA
           gating ops, batching credits, DMA-tag acquisition)
``payload`` payload-DMA dispatch → transfer complete (link + host
           ingress/walker service for the payload itself)
``completion`` transfer complete → completion visible to software
           (writeback batching wait, notify DMA, interrupt cost)
========== ==========================================================

Around the packet stages the tracer also records resource-level spans:
``op:<label>`` for gating descriptor/doorbell transactions, ``walker``
for IOMMU page-walker service time, ``arb:<resource>`` /
``arb:<resource>@<node>`` for arbitration wait at each topology hop, and
``drop`` (zero duration) when the ring rejects a packet.

Spans live in a bounded ``deque`` — a flight recorder: memory is
O(capacity), the newest spans win, and :attr:`Tracer.evicted` counts
what scrolled off.  Exporters produce Chrome trace-event JSON (open
`ui.perfetto.dev <https://ui.perfetto.dev>`_ and drop the file in) or
JSONL, one span object per line.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterator, NamedTuple

from ..errors import ValidationError

__all__ = [
    "ARB_PREFIX",
    "BATCH_PREFIX",
    "OP_PREFIX",
    "PACKET_STAGES",
    "STAGE_COMPLETION",
    "STAGE_DROP",
    "STAGE_ISSUE",
    "STAGE_PAYLOAD",
    "STAGE_RING",
    "STAGE_WALKER",
    "Span",
    "Tracer",
]

#: The four contiguous per-packet stages, in lifecycle order.  For every
#: delivered packet their durations sum to the recorded end-to-end latency.
STAGE_RING = "ring"
STAGE_ISSUE = "issue"
STAGE_PAYLOAD = "payload"
STAGE_COMPLETION = "completion"
PACKET_STAGES: tuple[str, ...] = (
    STAGE_RING,
    STAGE_ISSUE,
    STAGE_PAYLOAD,
    STAGE_COMPLETION,
)

#: Resource-level stages (not part of the contiguous packet decomposition).
STAGE_WALKER = "walker"
STAGE_DROP = "drop"

#: Prefixes for parameterised stage names.
OP_PREFIX = "op:"  # gating descriptor/doorbell ops, e.g. ``op:doorbell``
ARB_PREFIX = "arb:"  # arbitration wait, e.g. ``arb:walker@root``
#: Aggregate spans from the vectorised batch engine (one span per
#: transaction column, packet id -1): the batch path has no per-packet
#: lifecycle, so its spans cover a whole op's first request to last
#: completion, e.g. ``batch:TX packet fetch``.
BATCH_PREFIX = "batch:"

DEFAULT_CAPACITY = 65536


class Span(NamedTuple):
    """One traced interval: a stage of a packet (or resource) lifecycle."""

    device: str
    lane: str
    packet: int
    stage: str
    start_ns: float
    duration_ns: float

    def as_dict(self) -> dict:
        return {
            "device": self.device,
            "lane": self.lane,
            "packet": self.packet,
            "stage": self.stage,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }


class Tracer:
    """Bounded span recorder shared by every traced component of a run.

    ``record`` is the hot call; it appends a plain tuple to a bounded
    ``deque`` and increments a counter — no allocation beyond the tuple,
    no formatting, no I/O.  Everything else (exports, attribution) walks
    the buffer after the run.
    """

    __slots__ = ("capacity", "recorded", "_spans", "_packets")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValidationError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.recorded = 0
        self._spans: deque[tuple[str, str, int, str, float, float]] = deque(
            maxlen=self.capacity
        )
        self._packets = 0

    def next_packet(self) -> int:
        """A fresh trace-wide packet id (monotonic from 0)."""
        packet = self._packets
        self._packets = packet + 1
        return packet

    def record(
        self,
        device: str,
        lane: str,
        packet: int,
        stage: str,
        start_ns: float,
        duration_ns: float,
    ) -> None:
        """Append one span; evicts the oldest when the buffer is full."""
        self._spans.append((device, lane, packet, stage, start_ns, duration_ns))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def evicted(self) -> int:
        """Spans pushed out of the flight recorder by newer ones."""
        return self.recorded - len(self._spans)

    @property
    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        return [Span._make(raw) for raw in self._spans]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (Perfetto/`chrome://tracing`).

        Devices map to processes (``pid``), lanes (queue + direction) to
        threads (``tid``); every span is a complete ``"X"`` duration
        event with microsecond ``ts``/``dur`` per the trace-event spec.
        """
        pids: dict[str, int] = {}
        tids: dict[tuple[str, str], int] = {}
        span_events = []
        for device, lane, packet, stage, start, duration in self._spans:
            pid = pids.get(device)
            if pid is None:
                pid = pids[device] = len(pids) + 1
            key = (device, lane)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = len(tids) + 1
            span_events.append(
                {
                    "ph": "X",
                    "name": stage,
                    "cat": "pcie",
                    "pid": pid,
                    "tid": tid,
                    "ts": start / 1000.0,
                    "dur": duration / 1000.0,
                    "args": {
                        "packet": packet,
                        "start_ns": start,
                        "duration_ns": duration,
                    },
                }
            )
        events: list[dict] = []
        for device, pid in pids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": device},
                }
            )
        for (device, lane), tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pids[device],
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        events.extend(span_events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "recorded_spans": self.recorded,
                "evicted_spans": self.evicted,
            },
        }

    def jsonl_lines(self) -> Iterator[str]:
        """One compact JSON object per retained span."""
        for raw in self._spans:
            yield json.dumps(Span._make(raw).as_dict(), separators=(",", ":"))

    def dump(self, stream: IO[str], *, fmt: str) -> None:
        """Write the trace to an open text stream as ``chrome`` or ``jsonl``."""
        if fmt == "chrome":
            json.dump(self.chrome_trace(), stream, indent=1)
            stream.write("\n")
        elif fmt == "jsonl":
            for line in self.jsonl_lines():
                stream.write(line)
                stream.write("\n")
        else:
            raise ValidationError(f"unknown trace format {fmt!r}; use chrome or jsonl")

    def write(self, path: str) -> str:
        """Write the trace to ``path``; format by extension.

        ``.jsonl`` → JSONL, anything else → Chrome trace-event JSON.
        Returns the format used.
        """
        fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
        with open(path, "w", encoding="utf-8") as stream:
            self.dump(stream, fmt=fmt)
        return fmt
