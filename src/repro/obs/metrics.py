"""Unified metrics registry: named counters, gauges and histograms.

Simulation components publish into one :class:`MetricsRegistry` under
dotted lowercase names (``<component>.<object>.<measure>``, e.g.
``nicsim.victim.tx.packets`` or ``fabric.walker.wait_ns``).  Three
instrument kinds:

* :class:`Counter` — monotonically non-decreasing totals (packets,
  bytes, drops, IOTLB misses);
* :class:`Gauge` — last-set level measurements (link utilisation,
  arbiter weight);
* :class:`Histogram` — value distributions backed by the mergeable
  :class:`repro.stats.QuantileSketch` (latencies, per-stage waits).

``sample(now_ns)`` snapshots a window row — per-window counter deltas,
current gauge levels, per-window histogram observation counts — which is
how the registry rides the control plane's windowed tick.  ``as_dict``
serialises the whole registry (cumulative instruments + window rows)
onto result records.
"""

from __future__ import annotations

import re

from ..errors import ValidationError
from ..stats import QuantileSketch

__all__ = [
    "Counter",
    "DEFAULT_METRICS_WINDOW_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_segment",
]

#: Default sampling window for runs without a control plane; matches the
#: control plane's default tick so fabric metrics windows line up with
#: controller observation windows.
DEFAULT_METRICS_WINDOW_NS = 50_000.0

_NAME_RE = re.compile(r"^[a-z0-9_-]+(\.[a-z0-9_-]+)*$")
_SEGMENT_BAD_RE = re.compile(r"[^a-z0-9_-]+")


def metric_segment(raw: str) -> str:
    """Sanitise an arbitrary label (device/queue name) into a name segment."""
    segment = _SEGMENT_BAD_RE.sub("_", str(raw).lower()).strip("_")
    return segment or "unnamed"


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValidationError(
            f"metric name {name!r} must be lowercase dotted segments "
            "of [a-z0-9_-] (e.g. 'nicsim.victim.tx.packets')"
        )
    return name


class Counter:
    """Monotonically non-decreasing total."""

    __slots__ = ("name", "value", "_window_base")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._window_base = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (add {amount})"
            )
        self.value += amount

    def window_delta(self) -> float:
        """Growth since the previous ``MetricsRegistry.sample`` call."""
        delta = self.value - self._window_base
        self._window_base = self.value
        return delta


class Gauge:
    """Last-set level measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Value distribution backed by a mergeable quantile sketch."""

    __slots__ = ("name", "sketch", "_window_base")

    def __init__(self, name: str) -> None:
        self.name = name
        self.sketch = QuantileSketch()
        self._window_base = 0

    def observe(self, value: float) -> None:
        self.sketch.add(value)

    def observe_many(self, values) -> None:
        self.sketch.add_many(values)

    def window_delta(self) -> int:
        delta = self.sketch.count - self._window_base
        self._window_base = self.sketch.count
        return delta

    def summary(self) -> dict:
        sketch = self.sketch
        if sketch.count == 0:
            return {"count": 0}
        return {
            "count": sketch.count,
            "mean": sketch.mean,
            "min": sketch.minimum,
            "max": sketch.maximum,
            "p50": sketch.quantile(0.50),
            "p99": sketch.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments plus window rows."""

    __slots__ = ("_counters", "_gauges", "_histograms", "windows")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.windows: list[dict] = []

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._counters[name] = Counter(_validate_name(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._gauges[name] = Gauge(_validate_name(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._histograms[name] = Histogram(_validate_name(name))
        return instrument

    def _check_fresh(self, name: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ValidationError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def sample(self, now_ns: float) -> dict:
        """Close the current window and append its row.

        Counter and histogram columns hold *per-window deltas*; gauge
        columns hold the level at the window boundary.
        """
        row = {
            "window": len(self.windows),
            "time_ns": float(now_ns),
            "counters": {
                name: counter.window_delta()
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.window_delta()
                for name, histogram in sorted(self._histograms.items())
            },
        }
        self.windows.append(row)
        return row

    def as_dict(self) -> dict:
        """Serialisable view: cumulative instruments plus window rows."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
            "windows": list(self.windows),
        }
