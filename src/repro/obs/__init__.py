"""Observability layer: span traces and a unified metrics registry.

The simulation stack can *reproduce* the paper's latency cliffs; this
package is the instrument that *explains* them.  Two complementary views:

* :mod:`repro.obs.trace` — a span-based transaction tracer.  An opt-in
  :class:`Tracer` threads through the datapath (``nicsim``), the host
  coupling (``nichost``) and the fabric arbitration layers, recording one
  span per lifecycle stage of each packet (ring admit, descriptor/doorbell
  gating, payload DMA, completion report) plus resource-level spans
  (IOMMU walker service, arbitration wait per topology hop).  Spans live
  in a bounded ring buffer (flight-recorder semantics, O(capacity)
  memory) and export to Chrome trace-event JSON (loadable in Perfetto)
  or JSONL.
* :mod:`repro.obs.metrics` — a named counter/gauge/histogram registry
  (:class:`MetricsRegistry`, histograms backed by the
  :class:`~repro.stats.QuantileSketch`) that simulation components
  publish into, sampled per control window and serialisable onto results.

Both are strictly opt-in: with neither requested the hot path pays one
``is None`` check per packet and nothing else, so seeded goldens stay
bit-identical and the event-core perf gate holds.
"""

from .metrics import (
    DEFAULT_METRICS_WINDOW_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_segment,
)
from .trace import (
    ARB_PREFIX,
    BATCH_PREFIX,
    DEFAULT_CAPACITY,
    OP_PREFIX,
    PACKET_STAGES,
    STAGE_COMPLETION,
    STAGE_DROP,
    STAGE_ISSUE,
    STAGE_PAYLOAD,
    STAGE_RING,
    STAGE_WALKER,
    Span,
    Tracer,
)

__all__ = [
    "ARB_PREFIX",
    "BATCH_PREFIX",
    "DEFAULT_CAPACITY",
    "OP_PREFIX",
    "PACKET_STAGES",
    "STAGE_COMPLETION",
    "STAGE_DROP",
    "STAGE_ISSUE",
    "STAGE_PAYLOAD",
    "STAGE_RING",
    "STAGE_WALKER",
    "Span",
    "Tracer",
    "Counter",
    "DEFAULT_METRICS_WINDOW_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_segment",
]
