"""Benchmark parameters (§4 of the paper, Figure 3).

A pcie-bench micro-benchmark is fully described by:

* which benchmark to run (``LAT_RD``, ``LAT_WRRD``, ``BW_RD``, ``BW_WR``,
  ``BW_RDWR``),
* the host-buffer *window size* that is accessed repeatedly,
* the *transfer size* of every DMA,
* the *offset* of the DMA start within a cache line,
* the *access pattern* (random or sequential unit order),
* the *cache state* the window is prepared into (cold, host-warm,
  device-warm),
* the *NUMA placement* of the buffer (local or remote to the device),
* whether the *IOMMU* is enabled (and with which page size), and
* the system profile and device under test.

:class:`BenchmarkParams` validates these choices and knows how to derive the
simulation inputs from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..errors import ValidationError
from ..units import CACHELINE_BYTES, KIB, MIB, format_size, parse_size
from ..sim.cache import CacheState
from ..sim.hostbuffer import AccessPattern


class BenchmarkKind(enum.Enum):
    """The five micro-benchmarks of the pcie-bench methodology."""

    LAT_RD = "LAT_RD"
    LAT_WRRD = "LAT_WRRD"
    BW_RD = "BW_RD"
    BW_WR = "BW_WR"
    BW_RDWR = "BW_RDWR"

    @property
    def is_latency(self) -> bool:
        """Whether this benchmark reports per-transaction latency."""
        return self in (BenchmarkKind.LAT_RD, BenchmarkKind.LAT_WRRD)

    @property
    def is_bandwidth(self) -> bool:
        """Whether this benchmark reports sustained throughput."""
        return not self.is_latency

    @property
    def dma_operation(self) -> str:
        """The DMA-engine operation implementing this benchmark."""
        return {
            BenchmarkKind.LAT_RD: "read",
            BenchmarkKind.LAT_WRRD: "write_read",
            BenchmarkKind.BW_RD: "read",
            BenchmarkKind.BW_WR: "write",
            BenchmarkKind.BW_RDWR: "read_write",
        }[self]

    @classmethod
    def from_value(cls, value: "BenchmarkKind | str") -> "BenchmarkKind":
        """Coerce a name such as ``"bw_rd"`` or ``"LAT_RD"`` into a kind."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().upper()
        try:
            return cls(text)
        except ValueError as exc:
            raise ValidationError(
                f"unknown benchmark {value!r}; valid: "
                + ", ".join(kind.value for kind in cls)
            ) from exc


class NumaPlacement(enum.Enum):
    """Where the benchmark buffer lives relative to the device's socket."""

    LOCAL = "local"
    REMOTE = "remote"

    @classmethod
    def from_value(cls, value: "NumaPlacement | str") -> "NumaPlacement":
        """Coerce ``"local"`` / ``"remote"`` into a placement."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError as exc:
            raise ValidationError(f"unknown NUMA placement {value!r}") from exc


#: Default number of timed transactions for latency benchmarks.  The paper
#: journals 2 million; the simulation defaults to a smaller sample that
#: yields stable medians and percentiles up to p99.9.
DEFAULT_LATENCY_SAMPLES = 20_000
#: Default number of DMAs for bandwidth benchmarks (8 million in the paper).
DEFAULT_BANDWIDTH_TRANSACTIONS = 4_000


@dataclass(frozen=True)
class BenchmarkParams:
    """Complete description of one micro-benchmark run."""

    kind: BenchmarkKind
    transfer_size: int
    window_size: int = 8 * KIB
    offset: int = 0
    pattern: AccessPattern = AccessPattern.RANDOM
    cache_state: CacheState = CacheState.COLD
    placement: NumaPlacement = NumaPlacement.LOCAL
    iommu_enabled: bool = False
    iommu_page_size: int = 4 * KIB
    system: str = "NFP6000-HSW"
    use_command_interface: bool = False
    transactions: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", BenchmarkKind.from_value(self.kind))
        object.__setattr__(self, "pattern", AccessPattern.from_value(self.pattern))
        object.__setattr__(
            self, "cache_state", CacheState.from_value(self.cache_state)
        )
        object.__setattr__(
            self, "placement", NumaPlacement.from_value(self.placement)
        )
        if self.transfer_size <= 0:
            raise ValidationError(
                f"transfer_size must be positive, got {self.transfer_size}"
            )
        if self.window_size < self.transfer_size:
            raise ValidationError(
                "window_size must be at least transfer_size "
                f"({self.window_size} < {self.transfer_size})"
            )
        if not 0 <= self.offset < CACHELINE_BYTES:
            raise ValidationError(
                f"offset must be within [0, {CACHELINE_BYTES}), got {self.offset}"
            )
        if self.transactions is not None and self.transactions <= 0:
            raise ValidationError(
                f"transactions must be positive, got {self.transactions}"
            )

    # -- derived values ---------------------------------------------------------

    @property
    def effective_transactions(self) -> int:
        """Number of transactions to run, applying the per-kind default."""
        if self.transactions is not None:
            return self.transactions
        if self.kind.is_latency:
            return DEFAULT_LATENCY_SAMPLES
        return DEFAULT_BANDWIDTH_TRANSACTIONS

    def with_(self, **changes: object) -> "BenchmarkParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def label(self) -> str:
        """Compact human-readable description used in logs and reports."""
        parts = [
            self.kind.value,
            f"{self.transfer_size}B",
            f"win={format_size(self.window_size)}",
            self.cache_state.value,
            self.system,
        ]
        if self.offset:
            parts.append(f"off={self.offset}")
        if self.placement is NumaPlacement.REMOTE:
            parts.append("remote")
        if self.iommu_enabled:
            parts.append("iommu")
        return " ".join(parts)

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation of the parameters."""
        return {
            "kind": self.kind.value,
            "transfer_size": self.transfer_size,
            "window_size": self.window_size,
            "offset": self.offset,
            "pattern": self.pattern.value,
            "cache_state": self.cache_state.value,
            "placement": self.placement.value,
            "iommu_enabled": self.iommu_enabled,
            "iommu_page_size": self.iommu_page_size,
            "system": self.system,
            "use_command_interface": self.use_command_interface,
            "transactions": self.effective_transactions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "BenchmarkParams":
        """Rebuild parameters from :meth:`as_dict` output."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        if "window_size" in kwargs and isinstance(kwargs["window_size"], str):
            kwargs["window_size"] = parse_size(kwargs["window_size"])
        return cls(**kwargs)  # type: ignore[arg-type]


#: The window-size sweep used by the cache, NUMA and IOMMU experiments
#: (Figures 7, 8 and 9): 4 KiB to 64 MiB in powers of four.
WINDOW_SWEEP = tuple(4 * KIB * (4**i) for i in range(8))

#: The transfer sizes highlighted throughout Section 6.
COMMON_TRANSFER_SIZES = (64, 128, 256, 512, 1024, 2048)
