"""NIC datapath simulation as a first-class benchmark.

:class:`NicSimParams` plays the role :class:`~repro.bench.params.BenchmarkParams`
plays for the pcie-bench micro-benchmarks: a frozen, validated, serialisable
description of one run — NIC/driver model, traffic workload, offered load,
ring depth, and (optionally) the host the datapath is coupled to — that the
:class:`~repro.bench.runner.BenchmarkRunner` can execute alongside the
classic ``LAT_*``/``BW_*`` kinds and that sweeps can derive variants from
with :meth:`NicSimParams.with_`.

The host-coupling fields mirror the classic benchmark parameters: ``system``
picks a Table 1 profile (``None`` keeps the link-only datapath), and
``iommu_enabled`` / ``iommu_page_size`` / ``payload_window`` /
``payload_cache_state`` / ``payload_placement`` configure the
:class:`~repro.sim.nichost.NicHostConfig` the simulator builds from them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.nic import model_by_name
from ..errors import ValidationError
from ..sim.cache import CacheState
from ..sim.iommu import SUPPORTED_PAGE_SIZES
from ..sim.nichost import PAYLOAD_UNIT_BYTES, NicHostConfig
from ..sim.nicsim import NicSimResult, simulate_nic
from ..units import KIB, MIB, format_size
from ..workloads import canonical_flow_name, workload_names

#: The ``kind`` tag used in labels and serialised records, mirroring the
#: ``BenchmarkKind`` values of the classic micro-benchmarks.
NICSIM_KIND = "NICSIM"


@dataclass(frozen=True)
class NicSimParams:
    """Complete description of one NIC datapath simulation run.

    Attributes:
        model: NIC/driver model name (``"simple"``, ``"kernel"``,
            ``"dpdk"`` or a full Figure 1 model name).
        workload: named traffic workload (see :mod:`repro.workloads`).
        packet_size: frame size for the fixed-size workload families.
        offered_load_gbps: offered load per direction; ``None`` saturates.
        packets: packets simulated per direction.
        ring_depth: descriptor ring depth per direction.
        duplex: full-duplex (TX and RX) or TX-only traffic.
        rx_backpressure: stall instead of dropping when the RX ring fills.
        system: Table 1 host profile to couple the datapath to; ``None``
            runs the link-only datapath (flat host latency).
        iommu_enabled: translate DMA addresses (needs ``system``).
        iommu_page_size: IOVA page size (4 KiB, 2 MiB or 1 GiB).
        payload_window: payload-buffer working set the workload cycles
            through (drives cache and IOTLB pressure).
        payload_cache_state: cache preparation of the payload window.
        payload_placement: ``"local"`` or ``"remote"`` NUMA placement of
            the payload buffers (``"remote"`` needs ``system``).
        num_queues: TX/RX ring pairs per device (RSS steering when > 1).
        dma_tags: bounded in-flight DMA tag pool size; ``None`` keeps the
            historical unbounded issue.
        rss: flow scenario steering a multi-queue run (``"uniform"``,
            ``"zipf"``/``"skewed"``, ``"hot"``); ignored when
            ``num_queues == 1``.
        rss_table: optional RSS indirection table; entry ``b`` names the
            queue for hash bucket ``b`` (``queue = table[hash % len]``).
            ``None`` (the default) hashes directly onto queues, the
            historical mapping.  Requires ``num_queues > 1``.
        seed: workload RNG seed (``None`` uses the library default).
        retain_samples: keep per-packet latency arrays (the default).
            ``False`` streams latencies through an O(1)-memory quantile
            sketch instead — the mode fleet-scale runs use.
        mode: engine selection — ``"exact"`` (default, the scalar event
            loop every golden rests on), ``"batch"`` (vectorised solver
            with automatic scalar fallback) or ``"hybrid"`` (fluid
            fast-path).  Non-exact modes need numpy (the ``[fast]``
            extra).
    """

    model: str = "Simple NIC"
    workload: str = "fixed"
    packet_size: int = 1024
    offered_load_gbps: float | None = None
    packets: int = 4000
    ring_depth: int = 512
    duplex: bool = True
    rx_backpressure: bool = False
    system: str | None = None
    iommu_enabled: bool = False
    iommu_page_size: int = 4 * KIB
    payload_window: int = 4 * MIB
    payload_cache_state: str = "host_warm"
    payload_placement: str = "local"
    num_queues: int = 1
    dma_tags: int | None = None
    rss: str = "uniform"
    rss_table: tuple[int, ...] | None = None
    seed: int | None = None
    retain_samples: bool = True
    mode: str = "exact"

    def __post_init__(self) -> None:
        # Normalise aliases ("dpdk") to the canonical model name and fail
        # fast on unknown models/workloads, as BenchmarkParams does.
        object.__setattr__(self, "model", model_by_name(self.model).name)
        key = self.workload.strip().lower()
        if key not in workload_names():
            raise ValidationError(
                f"unknown workload {self.workload!r}; known workloads: "
                + ", ".join(workload_names())
            )
        object.__setattr__(self, "workload", key)
        if self.mode not in ("exact", "batch", "hybrid"):
            raise ValidationError(
                f"mode must be one of exact, batch, hybrid; got {self.mode!r}"
            )
        if self.packet_size <= 0:
            raise ValidationError(
                f"packet_size must be positive, got {self.packet_size}"
            )
        if self.offered_load_gbps is not None and self.offered_load_gbps <= 0:
            raise ValidationError(
                f"offered_load_gbps must be positive, got {self.offered_load_gbps}"
            )
        if self.packets <= 0:
            raise ValidationError(f"packets must be positive, got {self.packets}")
        if self.ring_depth <= 0:
            raise ValidationError(
                f"ring_depth must be positive, got {self.ring_depth}"
            )
        if not 1 <= self.num_queues <= 256:
            raise ValidationError(
                f"num_queues must be within [1, 256], got {self.num_queues}"
            )
        if self.dma_tags is not None and self.dma_tags <= 0:
            raise ValidationError(
                f"dma_tags must be positive (or None for unbounded), "
                f"got {self.dma_tags}"
            )
        # Canonicalise the RSS scenario name ("skewed" -> "zipf") so labels
        # and serialised params are stable whichever alias was written.
        object.__setattr__(self, "rss", canonical_flow_name(self.rss))
        if self.rss_table is not None:
            if self.num_queues == 1:
                raise ValidationError(
                    "rss_table requires num_queues > 1 (single-queue runs "
                    "have nothing to steer)"
                )
            table = tuple(int(entry) for entry in self.rss_table)
            if not table:
                raise ValidationError("rss_table must not be empty")
            for entry in table:
                if not 0 <= entry < self.num_queues:
                    raise ValidationError(
                        f"rss_table entries must be queue indices in "
                        f"[0, {self.num_queues}), got {entry}"
                    )
            object.__setattr__(self, "rss_table", table)
        # Host knobs are validated even on decoupled params, so a bad value
        # fails where it is written, not at a later with_(system=...).
        if self.iommu_page_size not in SUPPORTED_PAGE_SIZES:
            raise ValidationError(
                f"iommu_page_size must be one of {SUPPORTED_PAGE_SIZES}, "
                f"got {self.iommu_page_size}"
            )
        if self.payload_window < PAYLOAD_UNIT_BYTES:
            raise ValidationError(
                f"payload_window must hold at least one {PAYLOAD_UNIT_BYTES}-"
                f"byte unit, got {self.payload_window}"
            )
        object.__setattr__(
            self,
            "payload_cache_state",
            CacheState.from_value(self.payload_cache_state).value,
        )
        if self.system is not None:
            # Building the host config additionally validates profile name
            # and placement; keep the canonical profile spelling for labels
            # and serialisation.
            host = self.host_config()
            object.__setattr__(self, "system", host.system)
        elif self.iommu_enabled:
            raise ValidationError(
                "iommu_enabled requires a host system (set system=...)"
            )
        elif self.payload_placement != "local":
            raise ValidationError(
                "remote payload placement requires a host system (set system=...)"
            )

    @property
    def kind(self) -> str:
        """Benchmark kind tag (always ``"NICSIM"``)."""
        return NICSIM_KIND

    def host_config(self) -> NicHostConfig | None:
        """The host coupling these parameters describe (``None`` when decoupled)."""
        if self.system is None:
            return None
        return NicHostConfig(
            system=self.system,
            iommu_enabled=self.iommu_enabled,
            iommu_page_size=self.iommu_page_size,
            payload_window=self.payload_window,
            payload_cache_state=self.payload_cache_state,
            payload_placement=self.payload_placement,
        )

    def with_(self, **changes: object) -> "NicSimParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def label(self) -> str:
        """Compact human-readable description used in logs and reports."""
        parts = [NICSIM_KIND, self.model, self.workload]
        if self.workload in ("fixed", "poisson", "bursty"):
            parts.append(f"{self.packet_size}B")
        parts.append(
            "saturating"
            if self.offered_load_gbps is None
            else f"{self.offered_load_gbps:g}Gb/s"
        )
        parts.append(f"ring={self.ring_depth}")
        if self.num_queues > 1:
            parts.append(f"queues={self.num_queues}")
            parts.append(f"rss={self.rss}")
            if self.rss_table is not None:
                parts.append(f"rss-table[{len(self.rss_table)}]")
        if self.dma_tags is not None:
            parts.append(f"tags={self.dma_tags}")
        if not self.retain_samples:
            parts.append("streaming")
        if self.mode != "exact":
            parts.append(f"mode={self.mode}")
        if not self.duplex:
            parts.append("tx-only")
        if self.system is not None:
            parts.append(f"host={self.system}")
            parts.append(f"window={format_size(self.payload_window)}")
            parts.append(self.payload_cache_state)
            if self.iommu_enabled:
                parts.append(
                    f"iommu({format_size(self.iommu_page_size)} pages)"
                )
            if self.payload_placement != "local":
                parts.append(self.payload_placement)
        return " ".join(parts)

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation of the parameters.

        The multi-queue/tag keys are emitted only when they differ from the
        single-queue, unbounded defaults, so records written before those
        knobs existed (the PR 2 golden file) round-trip unchanged.
        """
        record: dict[str, object] = {
            "kind": NICSIM_KIND,
            "model": self.model,
            "workload": self.workload,
            "packet_size": self.packet_size,
            "offered_load_gbps": self.offered_load_gbps,
            "packets": self.packets,
            "ring_depth": self.ring_depth,
            "duplex": self.duplex,
            "rx_backpressure": self.rx_backpressure,
            "system": self.system,
            "iommu_enabled": self.iommu_enabled,
            "iommu_page_size": self.iommu_page_size,
            "payload_window": self.payload_window,
            "payload_cache_state": self.payload_cache_state,
            "payload_placement": self.payload_placement,
            "seed": self.seed,
        }
        if self.num_queues != 1:
            record["num_queues"] = self.num_queues
        if self.rss != "uniform":
            record["rss"] = self.rss
        if self.rss_table is not None:
            record["rss_table"] = list(self.rss_table)
        if self.dma_tags is not None:
            record["dma_tags"] = self.dma_tags
        if not self.retain_samples:
            record["retain_samples"] = False
        if self.mode != "exact":
            record["mode"] = self.mode
        return record

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "NicSimParams":
        """Rebuild parameters from :meth:`as_dict` output."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)  # type: ignore[arg-type]


def run_nicsim_benchmark(
    params: NicSimParams,
    *,
    profile_sink: list | None = None,
    tracer=None,
    metrics=None,
    device: str = "nic",
) -> NicSimResult:
    """Run one NIC datapath simulation as described by ``params``.

    ``profile_sink`` (a caller-owned list) collects the run's
    :class:`~repro.sim.engine.EngineProfile` when provided — the hook the
    ``pcie-bench nicsim --profile`` flag uses; the profile also attaches
    to the returned result (``result.profile``) so it serialises.

    ``tracer`` / ``metrics`` opt the run into the observability layer
    (:mod:`repro.obs`) — span traces of every packet lifecycle stage and
    a window-sampled metrics registry attached as ``result.metrics``.
    """
    return simulate_nic(
        params.model,
        params.workload,
        packets=params.packets,
        packet_size=params.packet_size,
        load_gbps=params.offered_load_gbps,
        duplex=params.duplex,
        ring_depth=params.ring_depth,
        rx_backpressure=params.rx_backpressure,
        host=params.host_config(),
        num_queues=params.num_queues,
        dma_tags=params.dma_tags,
        rss=params.rss,
        rss_table=params.rss_table,
        retain_samples=params.retain_samples,
        mode=params.mode,
        seed=params.seed,
        profile_sink=profile_sink,
        tracer=tracer,
        metrics=metrics,
        device=device,
    )
