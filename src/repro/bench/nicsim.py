"""NIC datapath simulation as a first-class benchmark.

:class:`NicSimParams` plays the role :class:`~repro.bench.params.BenchmarkParams`
plays for the pcie-bench micro-benchmarks: a frozen, validated, serialisable
description of one run — NIC/driver model, traffic workload, offered load,
ring depth — that the :class:`~repro.bench.runner.BenchmarkRunner` can
execute alongside the classic ``LAT_*``/``BW_*`` kinds and that sweeps can
derive variants from with :meth:`NicSimParams.with_`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.nic import model_by_name
from ..errors import ValidationError
from ..sim.nicsim import NicSimResult, simulate_nic
from ..workloads import workload_names

#: The ``kind`` tag used in labels and serialised records, mirroring the
#: ``BenchmarkKind`` values of the classic micro-benchmarks.
NICSIM_KIND = "NICSIM"


@dataclass(frozen=True)
class NicSimParams:
    """Complete description of one NIC datapath simulation run.

    Attributes:
        model: NIC/driver model name (``"simple"``, ``"kernel"``,
            ``"dpdk"`` or a full Figure 1 model name).
        workload: named traffic workload (see :mod:`repro.workloads`).
        packet_size: frame size for the fixed-size workload families.
        offered_load_gbps: offered load per direction; ``None`` saturates.
        packets: packets simulated per direction.
        ring_depth: descriptor ring depth per direction.
        duplex: full-duplex (TX and RX) or TX-only traffic.
        rx_backpressure: stall instead of dropping when the RX ring fills.
        seed: workload RNG seed (``None`` uses the library default).
    """

    model: str = "Simple NIC"
    workload: str = "fixed"
    packet_size: int = 1024
    offered_load_gbps: float | None = None
    packets: int = 4000
    ring_depth: int = 512
    duplex: bool = True
    rx_backpressure: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        # Normalise aliases ("dpdk") to the canonical model name and fail
        # fast on unknown models/workloads, as BenchmarkParams does.
        object.__setattr__(self, "model", model_by_name(self.model).name)
        key = self.workload.strip().lower()
        if key not in workload_names():
            raise ValidationError(
                f"unknown workload {self.workload!r}; known workloads: "
                + ", ".join(workload_names())
            )
        object.__setattr__(self, "workload", key)
        if self.packet_size <= 0:
            raise ValidationError(
                f"packet_size must be positive, got {self.packet_size}"
            )
        if self.offered_load_gbps is not None and self.offered_load_gbps <= 0:
            raise ValidationError(
                f"offered_load_gbps must be positive, got {self.offered_load_gbps}"
            )
        if self.packets <= 0:
            raise ValidationError(f"packets must be positive, got {self.packets}")
        if self.ring_depth <= 0:
            raise ValidationError(
                f"ring_depth must be positive, got {self.ring_depth}"
            )

    @property
    def kind(self) -> str:
        """Benchmark kind tag (always ``"NICSIM"``)."""
        return NICSIM_KIND

    def with_(self, **changes: object) -> "NicSimParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def label(self) -> str:
        """Compact human-readable description used in logs and reports."""
        parts = [NICSIM_KIND, self.model, self.workload]
        if self.workload in ("fixed", "poisson", "bursty"):
            parts.append(f"{self.packet_size}B")
        parts.append(
            "saturating"
            if self.offered_load_gbps is None
            else f"{self.offered_load_gbps:g}Gb/s"
        )
        parts.append(f"ring={self.ring_depth}")
        if not self.duplex:
            parts.append("tx-only")
        return " ".join(parts)

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation of the parameters."""
        return {
            "kind": NICSIM_KIND,
            "model": self.model,
            "workload": self.workload,
            "packet_size": self.packet_size,
            "offered_load_gbps": self.offered_load_gbps,
            "packets": self.packets,
            "ring_depth": self.ring_depth,
            "duplex": self.duplex,
            "rx_backpressure": self.rx_backpressure,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "NicSimParams":
        """Rebuild parameters from :meth:`as_dict` output."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)  # type: ignore[arg-type]


def run_nicsim_benchmark(params: NicSimParams) -> NicSimResult:
    """Run one NIC datapath simulation as described by ``params``."""
    return simulate_nic(
        params.model,
        params.workload,
        packets=params.packets,
        packet_size=params.packet_size,
        load_gbps=params.offered_load_gbps,
        duplex=params.duplex,
        ring_depth=params.ring_depth,
        rx_backpressure=params.rx_backpressure,
        seed=params.seed,
    )
