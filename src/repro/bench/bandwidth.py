"""Bandwidth micro-benchmarks: ``BW_RD``, ``BW_WR`` and ``BW_RDWR`` (§4.2).

Bandwidth is measured by issuing a large number of DMAs with the device's
full concurrency and dividing the bytes moved by the elapsed time.  The
alternating read/write variant (``BW_RDWR``) makes MRd TLPs compete with MWr
TLPs for the device-to-host direction, exactly as a NIC moving full-duplex
traffic would.
"""

from __future__ import annotations

from ..errors import BenchmarkError
from ..sim.dma import DmaEngine
from ..sim.host import HostSystem
from .params import BenchmarkKind, BenchmarkParams
from .results import BenchmarkResult


def run_bandwidth_benchmark(
    params: BenchmarkParams,
    *,
    host: HostSystem | None = None,
    engine: DmaEngine | None = None,
) -> BenchmarkResult:
    """Run ``BW_RD``, ``BW_WR`` or ``BW_RDWR`` as described by ``params``."""
    if not params.kind.is_bandwidth:
        raise BenchmarkError(
            f"run_bandwidth_benchmark got a latency benchmark: {params.kind.value}"
        )
    host = host or _build_host(params)
    engine = engine or DmaEngine(host)
    buffer = host.allocate_buffer(
        params.window_size,
        params.transfer_size,
        offset=params.offset,
        node=params.placement.value,
        page_size=params.iommu_page_size if params.iommu_enabled else None,
    )
    host.prepare(buffer, params.cache_state)
    measurement = engine.measure_bandwidth(
        buffer,
        params.kind.dma_operation,
        params.effective_transactions,
        pattern=params.pattern,
    )
    return BenchmarkResult(
        params=params,
        bandwidth_gbps=measurement.gbps,
        transactions_per_second=measurement.transactions_per_second,
        cache_hit_rate=measurement.cache_hit_rate,
        iotlb_miss_rate=measurement.iotlb_miss_rate,
    )


def bw_rd(
    transfer_size: int,
    *,
    system: str = "NFP6000-HSW",
    window_size: int | None = None,
    cache_state: str = "host_warm",
    **overrides: object,
) -> BenchmarkResult:
    """Convenience wrapper: run ``BW_RD`` with common defaults."""
    return _run_simple(
        BenchmarkKind.BW_RD, transfer_size, system, window_size, cache_state, overrides
    )


def bw_wr(
    transfer_size: int,
    *,
    system: str = "NFP6000-HSW",
    window_size: int | None = None,
    cache_state: str = "host_warm",
    **overrides: object,
) -> BenchmarkResult:
    """Convenience wrapper: run ``BW_WR`` with common defaults."""
    return _run_simple(
        BenchmarkKind.BW_WR, transfer_size, system, window_size, cache_state, overrides
    )


def bw_rdwr(
    transfer_size: int,
    *,
    system: str = "NFP6000-HSW",
    window_size: int | None = None,
    cache_state: str = "host_warm",
    **overrides: object,
) -> BenchmarkResult:
    """Convenience wrapper: run ``BW_RDWR`` with common defaults."""
    return _run_simple(
        BenchmarkKind.BW_RDWR,
        transfer_size,
        system,
        window_size,
        cache_state,
        overrides,
    )


def _run_simple(
    kind: BenchmarkKind,
    transfer_size: int,
    system: str,
    window_size: int | None,
    cache_state: str,
    overrides: dict[str, object],
) -> BenchmarkResult:
    params = BenchmarkParams(
        kind=kind,
        transfer_size=transfer_size,
        window_size=window_size or max(8 * 1024, transfer_size),
        cache_state=cache_state,
        system=system,
        **overrides,  # type: ignore[arg-type]
    )
    return run_bandwidth_benchmark(params)


def _build_host(params: BenchmarkParams) -> HostSystem:
    seed_kwargs = {} if params.seed is None else {"seed": params.seed}
    return HostSystem.from_profile(
        params.system,
        iommu_enabled=params.iommu_enabled,
        iommu_page_size=params.iommu_page_size,
        **seed_kwargs,
    )
