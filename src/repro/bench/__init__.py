"""The pcie-bench methodology: latency and bandwidth micro-benchmarks (§4)."""

from .bandwidth import bw_rd, bw_rdwr, bw_wr, run_bandwidth_benchmark
from .contention import (
    CONTENTION_KIND,
    FOUR_DEVICE_NAMES,
    ContentionParams,
    four_device_mix,
    noisy_neighbour_pair,
    run_contention_benchmark,
    solo_device_params,
)
from .fleet import (
    FLEET_KIND,
    FleetHostResult,
    FleetParams,
    FleetResult,
    run_fleet_benchmark,
)
from .latency import lat_rd, lat_wrrd, run_latency_benchmark
from .nicsim import NICSIM_KIND, NicSimParams, run_nicsim_benchmark
from .params import (
    COMMON_TRANSFER_SIZES,
    DEFAULT_BANDWIDTH_TRANSACTIONS,
    DEFAULT_LATENCY_SAMPLES,
    WINDOW_SWEEP,
    BenchmarkKind,
    BenchmarkParams,
    NumaPlacement,
)
from .results import (
    BenchmarkResult,
    filter_results,
    load_results_json,
    save_results_csv,
    save_results_json,
)
from .runner import BenchmarkRunner, contention_suite_params, full_suite_params
from .stats import LatencyStats, cdf, fraction_within, histogram, percentile_ratio

__all__ = [
    "bw_rd",
    "bw_rdwr",
    "bw_wr",
    "run_bandwidth_benchmark",
    "lat_rd",
    "lat_wrrd",
    "run_latency_benchmark",
    "NICSIM_KIND",
    "NicSimParams",
    "run_nicsim_benchmark",
    "CONTENTION_KIND",
    "FLEET_KIND",
    "FleetHostResult",
    "FleetParams",
    "FleetResult",
    "run_fleet_benchmark",
    "FOUR_DEVICE_NAMES",
    "ContentionParams",
    "four_device_mix",
    "noisy_neighbour_pair",
    "run_contention_benchmark",
    "solo_device_params",
    "COMMON_TRANSFER_SIZES",
    "DEFAULT_BANDWIDTH_TRANSACTIONS",
    "DEFAULT_LATENCY_SAMPLES",
    "WINDOW_SWEEP",
    "BenchmarkKind",
    "BenchmarkParams",
    "NumaPlacement",
    "BenchmarkResult",
    "filter_results",
    "load_results_json",
    "save_results_csv",
    "save_results_json",
    "BenchmarkRunner",
    "contention_suite_params",
    "full_suite_params",
    "LatencyStats",
    "cdf",
    "fraction_within",
    "histogram",
    "percentile_ratio",
]
