"""Latency statistics: the post-processing the pcie-bench control programs do.

For every latency benchmark the paper reports average, median, minimum,
maximum and the 95th/99th percentiles, and for the distribution study of
Figure 6 it additionally builds CDFs.  :class:`LatencyStats` computes all of
these from the raw per-transaction samples produced by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of latency samples (nanoseconds)."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float
    p90: float
    p95: float
    p99: float
    p999: float

    @classmethod
    def from_samples(cls, samples_ns: np.ndarray | list[float]) -> "LatencyStats":
        """Compute statistics from raw samples."""
        samples = np.asarray(samples_ns, dtype=np.float64)
        if samples.size == 0:
            raise AnalysisError("cannot compute statistics over zero samples")
        return cls(
            count=int(samples.size),
            mean=float(np.mean(samples)),
            median=float(np.median(samples)),
            minimum=float(np.min(samples)),
            maximum=float(np.max(samples)),
            std=float(np.std(samples)),
            p90=float(np.percentile(samples, 90)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            p999=float(np.percentile(samples, 99.9)),
        )

    def as_dict(self) -> dict[str, float]:
        """Serialisable representation."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "p99.9": self.p999,
        }

    @property
    def spread_95_to_min(self) -> float:
        """Distance from the minimum to the 95th percentile.

        The paper uses this band (error bars of Figure 5) to show how little
        variance the Xeon E5 systems exhibit.
        """
        return self.p95 - self.minimum


def cdf(samples_ns: np.ndarray | list[float], points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the samples, down-sampled to ``points`` coordinates.

    Returns ``(latencies, cumulative_fractions)`` suitable for plotting the
    Figure 6 curves.
    """
    samples = np.sort(np.asarray(samples_ns, dtype=np.float64))
    if samples.size == 0:
        raise AnalysisError("cannot compute a CDF over zero samples")
    if points <= 1:
        raise AnalysisError(f"points must be > 1, got {points}")
    fractions = np.linspace(0.0, 1.0, points)
    indices = np.clip(
        (fractions * (samples.size - 1)).round().astype(int), 0, samples.size - 1
    )
    return samples[indices], fractions


def histogram(
    samples_ns: np.ndarray | list[float],
    *,
    bins: int = 50,
    range_ns: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of latency samples: ``(bin_edges, counts)``."""
    samples = np.asarray(samples_ns, dtype=np.float64)
    if samples.size == 0:
        raise AnalysisError("cannot compute a histogram over zero samples")
    counts, edges = np.histogram(samples, bins=bins, range=range_ns)
    return edges, counts


def fraction_within(
    samples_ns: np.ndarray | list[float], low_ns: float, high_ns: float
) -> float:
    """Fraction of samples falling inside ``[low_ns, high_ns]``.

    Used to reproduce statements such as "99.9% of all transactions fall
    inside a narrow 80 ns range" (§6.2).
    """
    samples = np.asarray(samples_ns, dtype=np.float64)
    if samples.size == 0:
        raise AnalysisError("cannot compute a fraction over zero samples")
    if high_ns < low_ns:
        raise AnalysisError("high_ns must be >= low_ns")
    inside = np.count_nonzero((samples >= low_ns) & (samples <= high_ns))
    return inside / samples.size


def percentile_ratio(
    samples_ns: np.ndarray | list[float], upper: float, lower: float
) -> float:
    """Ratio between two percentiles (e.g. p99.9 / median for tail weight)."""
    samples = np.asarray(samples_ns, dtype=np.float64)
    if samples.size == 0:
        raise AnalysisError("cannot compute percentiles over zero samples")
    lower_value = float(np.percentile(samples, lower))
    if lower_value == 0:
        raise AnalysisError("lower percentile is zero; ratio undefined")
    return float(np.percentile(samples, upper)) / lower_value
