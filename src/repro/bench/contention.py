"""Multi-device contention runs as a first-class benchmark.

:class:`ContentionParams` plays the role :class:`~repro.bench.nicsim.NicSimParams`
plays for single-device datapath simulations: a frozen, validated,
serialisable description of one shared-host run — N per-device workload
specifications plus the fabric they contend on (host profile, shared IOMMU
settings, arbitration scheme and weights) — that the
:class:`~repro.bench.runner.BenchmarkRunner` can execute alongside the
classic micro-benchmarks and the ``NICSIM`` kind.

Per-device specifications are plain :class:`NicSimParams` with their host
half left empty (``system=None``): the fabric owns the host, so a device
spec only describes its traffic, datapath knobs and buffer working set.
``solo_device_params`` turns one device spec back into a standalone
host-coupled ``NICSIM`` run on an identical (but private) host — the
baseline the victim/aggressor slowdown analysis divides by, and, by the
fabric's degenerate-case contract, bit-identical to a one-device
contention run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ValidationError
from ..sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
)
from ..sim.iommu import SUPPORTED_PAGE_SIZES
from ..sim.topology import FabricTopology
from ..units import KIB, MIB, format_size
from ..workloads import build_flow_model, build_workload
from .nicsim import NicSimParams

#: The ``kind`` tag used in labels and serialised records.
CONTENTION_KIND = "CONTENTION"


def noisy_neighbour_pair(
    *,
    victim_packets: int = 600,
    aggressor_packets: int = 5000,
) -> tuple[NicSimParams, NicSimParams]:
    """The canonical (victim, aggressor) device pair of the §7 study.

    One definition shared by the CLI default, the suite scenarios and the
    ``figure-10-contention`` experiment, so the "stock pair" the docs
    describe cannot drift: a latency-sensitive DPDK victim (512 B fixed
    at 5 Gb/s, 64-deep rings, a 256 KiB warm window, 12 DMA tags — the
    bounded pool is what turns host stalls into lost throughput) against
    a bulk kernel-driver IMIX aggressor whose 64 MiB window blows through
    the IOTLB reach.  The aggressor needs roughly 8x the victim's packet
    count to stay saturating for the victim's whole measured window.
    """
    victim = NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=512,
        offered_load_gbps=5.0,
        packets=victim_packets,
        ring_depth=64,
        payload_window=256 * KIB,
        dma_tags=12,
    )
    aggressor = NicSimParams(
        model="kernel",
        workload="imix",
        packets=aggressor_packets,
        payload_window=64 * MIB,
    )
    return victim, aggressor


def four_device_mix(
    *,
    victim_packets: int = 600,
    aggressor_packets: int = 5000,
) -> tuple[NicSimParams, NicSimParams, NicSimParams, NicSimParams]:
    """A four-device shared-host mix: the fabric beyond the canonical pair.

    The :func:`noisy_neighbour_pair` victim and bulk aggressor joined by
    two mid-rate neighbours — a second (smaller-window) IMIX bulk device
    and a steady 1024 B streamer — so suite scenarios and invariant grids
    exercise N > 2 devices: four upstream queues per arbiter, four
    address regions in the shared IOTLB, four-way cache pressure.
    """
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=victim_packets, aggressor_packets=aggressor_packets
    )
    bulk2 = NicSimParams(
        model="kernel",
        workload="imix",
        packets=max(1, aggressor_packets // 2),
        payload_window=16 * MIB,
    )
    streamer = NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=1024,
        offered_load_gbps=10.0,
        packets=victim_packets,
        payload_window=1 * MIB,
    )
    return victim, aggressor, bulk2, streamer


#: Device labels of :func:`four_device_mix`, in order.
FOUR_DEVICE_NAMES = ("victim", "aggressor", "bulk2", "streamer")


@dataclass(frozen=True)
class ContentionParams:
    """Complete description of one shared-host contention run.

    Attributes:
        devices: one :class:`NicSimParams` per device, host half empty
            (``system=None``; the fabric supplies the shared host).  Each
            device's ``payload_window`` / ``payload_cache_state`` sizes its
            working set on the shared host, and its ``seed`` (when set)
            overrides the run seed for that device's workload draws.
        names: optional per-device labels (``("victim", "aggressor")``);
            defaults to ``dev0..devN-1``.
        system: Table 1 profile of the shared host.
        iommu_enabled / iommu_page_size: shared IOMMU settings.
        arbiter: arbitration scheme applied at every fabric node
            (``fcfs``, ``rr``, ``wrr``, ``age``, ``sliced``).
        weights: per-device service weights for the weighted schemes
            (``wrr``/``age``/``sliced``).
        topology: fabric tree as a compact spec string, e.g.
            ``"victim=root,aggressor=sw0,sw0=root"`` (devices → N-port
            switches → root port); ``None`` is the flat topology with
            every device directly on the root port.
        quantum_ns: preemptible service quantum of the ``sliced``
            arbiter (``None`` uses the engine default).
        ddio_partition: per-device DDIO/LLC capacity shares; ``None``
            keeps the shared aggregate residency.
        cache_model: ``"statistical"`` (default) or ``"faithful"`` — the
            line-accurate set-associative cache, warmed over each
            device's real address regions (per-owner DDIO *way* budgets
            when combined with ``ddio_partition``; O(window) to warm).
        controller: closed-loop control policy retuning the run's QoS
            knobs mid-run (``static`` — no control plane, the default —
            ``threshold`` or ``aimd``; see :mod:`repro.control`).
        control_window_ns: the controller's observation window in
            simulated nanoseconds (``None`` uses the control-plane
            default; only valid with a non-static controller).
        mode: engine selection (``"exact"``/``"batch"``/``"hybrid"``, see
            :meth:`~repro.sim.fabric.FabricSimulator.run`).  Fabric runs
            always couple the host, so ``"batch"`` runs the exact scalar
            engine; ``"hybrid"`` runs fluid datapaths that re-enter
            packet mode on every control action.
        engine_profile: attach the run's
            :class:`~repro.sim.engine.EngineProfile` to the result
            (``result.profile``).  A parameter rather than only a runner
            kwarg so profiling survives the process-pool dispatch, which
            pickles parameters and results but no sinks.
        seed: run seed (``None`` uses the library default).
    """

    devices: tuple[NicSimParams, ...]
    names: tuple[str, ...] | None = None
    system: str = "NFP6000-HSW"
    iommu_enabled: bool = False
    iommu_page_size: int = 4 * KIB
    arbiter: str = "fcfs"
    weights: tuple[float, ...] | None = None
    topology: str | None = None
    quantum_ns: float | None = None
    ddio_partition: tuple[float, ...] | None = None
    cache_model: str = "statistical"
    controller: str = "static"
    control_window_ns: float | None = None
    mode: str = "exact"
    engine_profile: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValidationError("a contention run needs at least one device")
        if self.mode not in ("exact", "batch", "hybrid"):
            raise ValidationError(
                f"mode must be one of exact, batch, hybrid; got {self.mode!r}"
            )
        for index, device in enumerate(self.devices):
            if not isinstance(device, NicSimParams):
                raise ValidationError(
                    f"device {index} must be NicSimParams, got {type(device)}"
                )
            if device.system is not None:
                raise ValidationError(
                    f"device {index} sets system={device.system!r}; the "
                    "fabric owns the host — leave the device's host half "
                    "empty (system=None)"
                )
        if self.iommu_page_size not in SUPPORTED_PAGE_SIZES:
            raise ValidationError(
                f"iommu_page_size must be one of {SUPPORTED_PAGE_SIZES}, "
                f"got {self.iommu_page_size}"
            )
        if self.names is not None:
            names = tuple(str(name) for name in self.names)
            if len(names) != len(self.devices):
                raise ValidationError(
                    f"need one name per device ({len(self.devices)}), "
                    f"got {len(names)}"
                )
            if len(set(names)) != len(names):
                raise ValidationError(f"device names must be unique: {names}")
            object.__setattr__(self, "names", names)
        # Delegate the fabric-half validation (profile, arbiter scheme,
        # weight/quantum scheme compatibility and positivity, topology
        # grammar, partition-share positivity, cache model) to the
        # FabricConfig these parameters will construct at run time — one
        # source of truth — and keep only the device-count-dependent
        # rules here, which FabricConfig cannot know.
        fabric = self._fabric_config()
        object.__setattr__(self, "system", fabric.system)
        if fabric.weights is not None:
            if len(fabric.weights) != len(self.devices):
                raise ValidationError(
                    f"need one weight per device ({len(self.devices)}), "
                    f"got {len(fabric.weights)}"
                )
            object.__setattr__(self, "weights", fabric.weights)
        if self.quantum_ns is not None:
            object.__setattr__(self, "quantum_ns", float(self.quantum_ns))
        if fabric.topology is not None:
            # The leaves must be exactly this run's devices; pin the
            # canonical spec spelling.
            fabric.topology.validate_devices(self.device_names())
            object.__setattr__(self, "topology", fabric.topology.spec())
        if fabric.ddio_partition is not None:
            if len(fabric.ddio_partition) != len(self.devices):
                raise ValidationError(
                    f"need one ddio_partition share per device "
                    f"({len(self.devices)}), got {len(fabric.ddio_partition)}"
                )
            object.__setattr__(self, "ddio_partition", fabric.ddio_partition)
        if fabric.control_window_ns is not None:
            object.__setattr__(
                self, "control_window_ns", fabric.control_window_ns
            )

    def _fabric_config(self) -> FabricConfig:
        """The runtime fabric these parameters describe (also validates)."""
        return FabricConfig(
            system=self.system,
            iommu_enabled=self.iommu_enabled,
            iommu_page_size=self.iommu_page_size,
            arbiter=self.arbiter,
            weights=self.weights,
            topology=self.topology,
            quantum_ns=self.quantum_ns,
            ddio_partition=self.ddio_partition,
            cache_model=self.cache_model,
            controller=self.controller,
            control_window_ns=self.control_window_ns,
        )

    @property
    def kind(self) -> str:
        """Benchmark kind tag (always ``"CONTENTION"``)."""
        return CONTENTION_KIND

    def device_names(self) -> tuple[str, ...]:
        """Resolved per-device labels."""
        if self.names is not None:
            return self.names
        return tuple(f"dev{index}" for index in range(len(self.devices)))

    def with_(self, **changes: object) -> "ContentionParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def label(self) -> str:
        """Compact human-readable description used in logs and reports."""
        parts = [
            CONTENTION_KIND,
            f"{len(self.devices)}x",
            f"host={self.system}",
            f"arbiter={self.arbiter}",
        ]
        if self.weights is not None:
            parts.append(
                "weights=" + ":".join(f"{weight:g}" for weight in self.weights)
            )
        if self.topology is not None:
            depth = FabricTopology.parse(self.topology).depth()
            parts.append(f"topology=depth{depth}")
        if self.quantum_ns is not None:
            parts.append(f"quantum={self.quantum_ns:g}ns")
        if self.ddio_partition is not None:
            parts.append(
                "ddio="
                + ":".join(f"{share:g}" for share in self.ddio_partition)
            )
        if self.cache_model != "statistical":
            parts.append(f"cache={self.cache_model}")
        if self.controller != "static":
            parts.append(f"controller={self.controller}")
            if self.control_window_ns is not None:
                parts.append(f"window={self.control_window_ns:g}ns")
        if self.mode != "exact":
            parts.append(f"mode={self.mode}")
        if self.iommu_enabled:
            parts.append(f"iommu({format_size(self.iommu_page_size)} pages)")
        for name, device in zip(self.device_names(), self.devices):
            load = (
                "saturating"
                if device.offered_load_gbps is None
                else f"{device.offered_load_gbps:g}Gb/s"
            )
            parts.append(f"[{name}: {device.workload} {load}]")
        return " ".join(parts)

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation of the parameters.

        The topology/quantum/partition keys are emitted only when they
        differ from the flat-fabric defaults, so records written before
        those knobs existed round-trip unchanged.
        """
        record: dict[str, object] = {
            "kind": CONTENTION_KIND,
            "system": self.system,
            "iommu_enabled": self.iommu_enabled,
            "iommu_page_size": self.iommu_page_size,
            "arbiter": self.arbiter,
            "weights": None if self.weights is None else list(self.weights),
            "seed": self.seed,
            "devices": [device.as_dict() for device in self.devices],
        }
        if self.names is not None:
            record["names"] = list(self.names)
        if self.topology is not None:
            record["topology"] = self.topology
        if self.quantum_ns is not None:
            record["quantum_ns"] = self.quantum_ns
        if self.ddio_partition is not None:
            record["ddio_partition"] = list(self.ddio_partition)
        if self.cache_model != "statistical":
            record["cache_model"] = self.cache_model
        if self.controller != "static":
            record["controller"] = self.controller
            if self.control_window_ns is not None:
                record["control_window_ns"] = self.control_window_ns
        if self.mode != "exact":
            record["mode"] = self.mode
        if self.engine_profile:
            record["engine_profile"] = True
        return record

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ContentionParams":
        """Rebuild parameters from :meth:`as_dict` output."""
        devices = tuple(
            NicSimParams.from_dict(dict(device))  # type: ignore[arg-type]
            for device in data["devices"]  # type: ignore[union-attr]
        )
        names = data.get("names")
        weights = data.get("weights")
        topology = data.get("topology")
        quantum = data.get("quantum_ns")
        partition = data.get("ddio_partition")
        return cls(
            devices=devices,
            names=None if names is None else tuple(names),  # type: ignore[arg-type]
            system=str(data.get("system", "NFP6000-HSW")),
            iommu_enabled=bool(data.get("iommu_enabled", False)),
            iommu_page_size=int(data.get("iommu_page_size", 4 * KIB)),  # type: ignore[arg-type]
            arbiter=str(data.get("arbiter", "fcfs")),
            weights=None if weights is None else tuple(weights),  # type: ignore[arg-type]
            topology=None if topology is None else str(topology),
            quantum_ns=None if quantum is None else float(quantum),  # type: ignore[arg-type]
            ddio_partition=(
                None if partition is None else tuple(partition)  # type: ignore[arg-type]
            ),
            cache_model=str(data.get("cache_model", "statistical")),
            controller=str(data.get("controller", "static")),
            control_window_ns=(
                None
                if data.get("control_window_ns") is None
                else float(data["control_window_ns"])  # type: ignore[arg-type]
            ),
            mode=str(data.get("mode", "exact")),
            engine_profile=bool(data.get("engine_profile", False)),
            seed=data.get("seed"),  # type: ignore[arg-type]
        )


def solo_device_params(params: ContentionParams, index: int) -> NicSimParams:
    """One device's standalone baseline: the same datapath on a private host.

    The returned ``NICSIM`` parameters couple the device to a host with the
    fabric's profile and IOMMU settings but no neighbours — what the
    device would measure if it did not share.  Dividing a contended
    device's metrics by this run's yields its *slowdown*.

    Seed semantics: a plain ``NICSIM`` run has one seed for both workload
    and host, so the baseline uses the device's seed override when one is
    set (else the run seed).  A *one-device* contention run resolves its
    host seed the same way (see :func:`run_contention_benchmark`), so the
    bit-identical degenerate contract holds with or without an override;
    in a *multi-device* fabric a device's seed override decorrelates only
    that device's workload/RSS draws — the shared host always uses the
    run seed, and baselines for such devices compare workload-identical
    but host-stream-shifted runs.
    """
    if not 0 <= index < len(params.devices):
        raise ValidationError(
            f"device index must be within [0, {len(params.devices)}), "
            f"got {index}"
        )
    device = params.devices[index]
    return device.with_(
        system=params.system,
        iommu_enabled=params.iommu_enabled,
        iommu_page_size=params.iommu_page_size,
        seed=device.seed if device.seed is not None else params.seed,
    )


def _fabric_device(device: NicSimParams, name: str) -> FabricDevice:
    """Translate one device spec into the simulator's device description."""
    workload = build_workload(
        device.workload,
        size=device.packet_size,
        load_gbps=device.offered_load_gbps,
        duplex=device.duplex,
    )
    if device.num_queues > 1 and workload.flows is None:
        workload = workload.with_(flows=build_flow_model(device.rss))
    return FabricDevice(
        workload=workload,
        model=device.model,
        packets=device.packets,
        name=name,
        ring_depth=device.ring_depth,
        rx_backpressure=device.rx_backpressure,
        num_queues=device.num_queues,
        dma_tags=device.dma_tags,
        payload_window=device.payload_window,
        payload_cache_state=device.payload_cache_state,
        payload_placement=device.payload_placement,
        seed=device.seed,
        retain_samples=device.retain_samples,
        rss_table=device.rss_table,
    )


def run_contention_benchmark(
    params: ContentionParams,
    *,
    profile_sink: list | None = None,
    tracer=None,
    metrics=None,
) -> ContentionResult:
    """Run one shared-host contention benchmark as described by ``params``.

    A one-device run whose device overrides the seed resolves the run
    seed to that override: a plain ``NICSIM`` run seeds host and workload
    together, so this is what keeps the degenerate case bit-identical to
    :func:`solo_device_params` even under per-device seeding.

    ``profile_sink`` (a caller-owned list) collects the run's
    :class:`~repro.sim.engine.EngineProfile` when provided — the hook
    behind the ``pcie-bench contend --profile`` flag.  When profiling is
    requested (via the sink or ``params.engine_profile``), the profile is
    also attached to the returned result so it serialises with it.

    ``tracer`` / ``metrics`` opt the run into the observability layer
    (:mod:`repro.obs`): a span :class:`~repro.obs.Tracer` threaded
    through every device's datapath and the fabric arbitration hops, and
    a :class:`~repro.obs.MetricsRegistry` sampled per control window and
    attached to the result as ``result.metrics``.
    """
    seed = params.seed
    if len(params.devices) == 1 and params.devices[0].seed is not None:
        seed = params.devices[0].seed
    fabric = params._fabric_config()
    devices = [
        _fabric_device(device, name)
        for device, name in zip(params.devices, params.device_names())
    ]
    simulator = FabricSimulator(devices, fabric)
    result = simulator.run(
        seed=seed, tracer=tracer, metrics=metrics, mode=params.mode
    )
    if simulator.last_profile is not None:
        if profile_sink is not None:
            profile_sink.append(simulator.last_profile)
        if params.engine_profile or profile_sink is not None:
            result = replace(result, profile=simulator.last_profile)
    return result
