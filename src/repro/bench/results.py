"""Result records produced by the benchmarks, plus (de)serialisation helpers.

The real pcie-bench control programs write raw measurements to files and
post-process them into summary metrics (§5.4).  This module plays that role:
every benchmark run yields a :class:`BenchmarkResult` that couples the input
parameters with either latency statistics or bandwidth figures and can be
round-tripped through JSON/CSV for later analysis.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError, ValidationError
from ..sim.fabric import ContentionResult
from ..sim.nicsim import NicSimResult
from .fleet import FleetResult
from .params import BenchmarkParams
from .stats import LatencyStats


@dataclass(frozen=True)
class BenchmarkResult:
    """Outcome of one micro-benchmark run.

    Exactly one of ``latency`` / ``bandwidth_gbps`` is populated, matching
    the benchmark kind in ``params``.
    """

    params: BenchmarkParams
    latency: LatencyStats | None = None
    bandwidth_gbps: float | None = None
    transactions_per_second: float | None = None
    cache_hit_rate: float | None = None
    iotlb_miss_rate: float | None = None
    samples_ns: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.params.kind.is_latency and self.latency is None:
            raise ValidationError(
                f"{self.params.kind.value} result requires latency statistics"
            )
        if self.params.kind.is_bandwidth and self.bandwidth_gbps is None:
            raise ValidationError(
                f"{self.params.kind.value} result requires a bandwidth figure"
            )

    # -- convenience accessors ----------------------------------------------------

    @property
    def metric(self) -> float:
        """The headline number: median latency (ns) or bandwidth (Gb/s)."""
        if self.latency is not None:
            return self.latency.median
        assert self.bandwidth_gbps is not None
        return self.bandwidth_gbps

    def as_dict(self, *, include_samples: bool = False) -> dict[str, object]:
        """Serialisable representation (samples omitted by default)."""
        record: dict[str, object] = {"params": self.params.as_dict()}
        if self.latency is not None:
            record["latency"] = self.latency.as_dict()
        if self.bandwidth_gbps is not None:
            record["bandwidth_gbps"] = self.bandwidth_gbps
        if self.transactions_per_second is not None:
            record["transactions_per_second"] = self.transactions_per_second
        if self.cache_hit_rate is not None:
            record["cache_hit_rate"] = self.cache_hit_rate
        if self.iotlb_miss_rate is not None:
            record["iotlb_miss_rate"] = self.iotlb_miss_rate
        if include_samples and self.samples_ns is not None:
            record["samples_ns"] = [float(value) for value in self.samples_ns]
        return record

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "BenchmarkResult":
        """Rebuild a result from :meth:`as_dict` output."""
        params = BenchmarkParams.from_dict(dict(data["params"]))  # type: ignore[arg-type]
        latency = None
        if "latency" in data:
            stats = dict(data["latency"])  # type: ignore[arg-type]
            latency = LatencyStats(
                count=int(stats["count"]),
                mean=float(stats["mean"]),
                median=float(stats["median"]),
                minimum=float(stats["min"]),
                maximum=float(stats["max"]),
                std=float(stats["std"]),
                p90=float(stats["p90"]),
                p95=float(stats["p95"]),
                p99=float(stats["p99"]),
                p999=float(stats["p99.9"]),
            )
        samples = None
        if "samples_ns" in data:
            samples = np.asarray(data["samples_ns"], dtype=np.float64)
        return cls(
            params=params,
            latency=latency,
            bandwidth_gbps=_optional_float(data.get("bandwidth_gbps")),
            transactions_per_second=_optional_float(
                data.get("transactions_per_second")
            ),
            cache_hit_rate=_optional_float(data.get("cache_hit_rate")),
            iotlb_miss_rate=_optional_float(data.get("iotlb_miss_rate")),
            samples_ns=samples,
        )


def _optional_float(value: object) -> float | None:
    return None if value is None else float(value)


# ---------------------------------------------------------------------------
# Collections of results
# ---------------------------------------------------------------------------


def save_results_json(
    results: Sequence[
        "BenchmarkResult | NicSimResult | ContentionResult | FleetResult"
    ],
    path: str | Path,
    *,
    include_samples: bool = False,
) -> None:
    """Write results to a JSON file (micro-benchmark, simulation, contention, fleet)."""
    records = [
        result.as_dict(include_samples=include_samples)
        if isinstance(result, BenchmarkResult)
        else result.as_dict()
        for result in results
    ]
    Path(path).write_text(json.dumps(records, indent=2))


def load_results_json(
    path: str | Path,
) -> list["BenchmarkResult | NicSimResult | ContentionResult | FleetResult"]:
    """Read results back from saved JSON.

    Handles both plain micro-benchmark files and mixed files written by
    :meth:`repro.bench.runner.BenchmarkRunner.save`: records tagged
    ``"kind": "NICSIM"`` are rebuilt as
    :class:`~repro.sim.nicsim.NicSimResult`, records tagged
    ``"kind": "CONTENTION"`` as
    :class:`~repro.sim.fabric.ContentionResult`, and records tagged
    ``"kind": "FLEET"`` as :class:`~repro.bench.fleet.FleetResult`.
    """
    text = Path(path).read_text()
    records = json.loads(text)
    if not isinstance(records, list):
        raise AnalysisError(f"expected a list of results in {path}")
    rebuilt: list[
        "BenchmarkResult | NicSimResult | ContentionResult | FleetResult"
    ] = []
    for record in records:
        if record.get("kind") == "NICSIM":
            rebuilt.append(NicSimResult.from_dict(record))
        elif record.get("kind") == "CONTENTION":
            rebuilt.append(ContentionResult.from_dict(record))
        elif record.get("kind") == "FLEET":
            rebuilt.append(FleetResult.from_dict(record))
        else:
            rebuilt.append(BenchmarkResult.from_dict(record))
    return rebuilt


def save_results_csv(results: Sequence[BenchmarkResult], path: str | Path) -> None:
    """Write a flat CSV with one row per result (summary metrics only)."""
    if not results:
        raise AnalysisError("no results to save")
    rows = []
    for result in results:
        row: dict[str, object] = dict(result.params.as_dict())
        if result.latency is not None:
            row.update(
                {f"latency_{key}": value for key, value in result.latency.as_dict().items()}
            )
        if result.bandwidth_gbps is not None:
            row["bandwidth_gbps"] = result.bandwidth_gbps
        if result.transactions_per_second is not None:
            row["transactions_per_second"] = result.transactions_per_second
        if result.cache_hit_rate is not None:
            row["cache_hit_rate"] = result.cache_hit_rate
        if result.iotlb_miss_rate is not None:
            row["iotlb_miss_rate"] = result.iotlb_miss_rate
        rows.append(row)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def filter_results(
    results: Iterable[BenchmarkResult], **criteria: object
) -> list[BenchmarkResult]:
    """Select results whose parameters match all the given criteria.

    Example::

        filter_results(all_results, kind=BenchmarkKind.BW_RD, transfer_size=64)
    """
    selected = []
    for result in results:
        params_dict = result.params.as_dict()
        match = True
        for key, wanted in criteria.items():
            if key not in params_dict:
                raise ValidationError(f"unknown parameter {key!r} in filter")
            actual = params_dict[key]
            wanted_value = getattr(wanted, "value", wanted)
            if actual != wanted_value and actual != wanted:
                match = False
                break
        if match:
            selected.append(result)
    return selected
