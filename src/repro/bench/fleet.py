"""Rack-scale fleet simulation: many shared hosts, O(1)-memory statistics.

:class:`FleetParams` describes a rack of N hosts, each a full
:mod:`repro.sim.fabric` shared-host configuration: a latency-sensitive
victim device (the canonical DPDK device of
:func:`~repro.bench.contention.noisy_neighbour_pair`) plus, on hosts the
placement policy assigned tenants to, a bulk aggressor whose offered load
is the host's Zipf tenant demand share scaled by the rack's nominal load
and the load-profile factor (:mod:`repro.fleet`).  Every device runs with
``retain_samples=False``, so a host run carries a mergeable
:class:`~repro.stats.QuantileSketch` instead of per-packet arrays — the
whole rack reduces in O(buckets), not O(packets).

Determinism contract: host ``i``'s seed is
:func:`~repro.fleet.fleet_host_seed` of ``(fleet seed, i)`` — a pure
function of the index — and :func:`run_fleet_benchmark` reduces the
*ordered* result list host by host, so ``jobs=1`` and ``jobs=N`` produce
bit-identical :class:`FleetResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import ValidationError
from ..fleet import (
    canonical_load_profile,
    canonical_placement,
    fleet_host_seed,
    host_demand_shares,
    load_profile_factors,
    place_tenants,
    zipf_tenant_weights,
)
from ..sim.engine import ARBITER_SCHEMES
from ..sim.fabric import ContentionResult
from ..sim.nicsim import LatencySummary
from ..sim.profiles import profile_names
from ..sim.rng import DEFAULT_SEED
from ..stats import QuantileSketch
from ..units import KIB, MIB
from ..workloads import SATURATING_LOAD_GBPS
from .contention import ContentionParams
from .nicsim import NicSimParams

#: The ``kind`` tag used in labels and serialised records.
FLEET_KIND = "FLEET"


@dataclass(frozen=True)
class FleetParams:
    """Complete description of one rack-scale fleet run.

    Attributes:
        hosts: number of shared hosts in the rack.
        placement: tenant placement policy, ``"spread"`` (round-robin) or
            ``"pack"`` (consolidate onto half the rack).
        tenants: tenant population size.
        tenant_skew: Zipf exponent of the tenant demand distribution
            (0 = uniform).
        load_profile: ``"flat"``, ``"diurnal"`` or ``"flash"`` (see
            :mod:`repro.fleet.load`).
        system: Table 1 profile every host runs.
        arbiter: arbitration scheme at every host's fabric nodes.
        iommu_enabled: share each host's IOMMU between its devices.
        victim_packets: packets per direction for each host's victim.
        aggressor_packets: packets per direction for each aggressor.
        rack_load_gbps: nominal aggressor load of the whole rack; host
            ``h`` offers ``rack_load_gbps * demand_share(h) *
            profile_factor(h)`` (capped at the saturating load).
        seed: fleet seed (``None`` uses the library default); per-host
            seeds are derived substreams, never the raw value.
    """

    hosts: int = 8
    placement: str = "spread"
    tenants: int = 16
    tenant_skew: float = 1.2
    load_profile: str = "flat"
    system: str = "NFP6000-HSW"
    arbiter: str = "fcfs"
    iommu_enabled: bool = True
    victim_packets: int = 400
    aggressor_packets: int = 2400
    rack_load_gbps: float = 240.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.hosts <= 256:
            raise ValidationError(
                f"hosts must be within [1, 256], got {self.hosts}"
            )
        object.__setattr__(
            self, "placement", canonical_placement(self.placement)
        )
        if self.tenants < 1:
            raise ValidationError(
                f"tenants must be positive, got {self.tenants}"
            )
        if self.tenant_skew < 0.0:
            raise ValidationError(
                f"tenant_skew must be non-negative, got {self.tenant_skew}"
            )
        object.__setattr__(
            self, "load_profile", canonical_load_profile(self.load_profile)
        )
        if self.system.lower() not in {
            name.lower() for name in profile_names()
        }:
            raise ValidationError(
                f"unknown system {self.system!r}; known: "
                + ", ".join(profile_names())
            )
        if self.arbiter not in ARBITER_SCHEMES:
            raise ValidationError(
                f"unknown arbiter {self.arbiter!r}; known: "
                + ", ".join(ARBITER_SCHEMES)
            )
        if self.victim_packets <= 0:
            raise ValidationError(
                f"victim_packets must be positive, got {self.victim_packets}"
            )
        if self.aggressor_packets <= 0:
            raise ValidationError(
                f"aggressor_packets must be positive, "
                f"got {self.aggressor_packets}"
            )
        if self.rack_load_gbps <= 0.0:
            raise ValidationError(
                f"rack_load_gbps must be positive, got {self.rack_load_gbps}"
            )

    @property
    def kind(self) -> str:
        """Benchmark kind tag (always ``"FLEET"``)."""
        return FLEET_KIND

    @property
    def run_seed(self) -> int:
        """The effective fleet seed (library default when unset)."""
        return DEFAULT_SEED if self.seed is None else self.seed

    def with_(self, **changes: object) -> "FleetParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def host_names(self) -> tuple[str, ...]:
        """Stable per-host labels (``host0`` .. ``hostN-1``)."""
        return tuple(f"host{index}" for index in range(self.hosts))

    def tenant_placement(self) -> tuple[tuple[int, ...], ...]:
        """Which tenants (popularity ranks) each host carries."""
        return place_tenants(self.tenants, self.hosts, self.placement)

    def host_aggressor_loads(self) -> tuple[float | None, ...]:
        """Per-host aggressor offered load in Gb/s (``None``: no aggressor).

        The rack's nominal load is split by Zipf demand share under the
        placement, then shaped by the load profile; the flash crowd lands
        on the host carrying tenant 0 (the most popular).  Hosts whose
        demand works out to zero get no aggressor device at all.
        """
        weights = zipf_tenant_weights(self.tenants, self.tenant_skew)
        placement = self.tenant_placement()
        shares = host_demand_shares(weights, placement)
        flash_host = next(
            index for index, tenants in enumerate(placement) if 0 in tenants
        )
        factors = load_profile_factors(
            self.load_profile, self.hosts, flash_host=flash_host
        )
        loads: list[float | None] = []
        for share, factor in zip(shares, factors):
            load = self.rack_load_gbps * share * factor
            loads.append(
                None if load <= 0.0 else min(load, SATURATING_LOAD_GBPS)
            )
        return tuple(loads)

    def host_params(self, index: int) -> ContentionParams:
        """The shared-host contention run of one rack host.

        Every device streams its latencies (``retain_samples=False``) so
        the host result carries mergeable sketches instead of per-packet
        arrays; the host seed is the :func:`~repro.fleet.fleet_host_seed`
        substream for this index.
        """
        if not 0 <= index < self.hosts:
            raise ValidationError(
                f"host index must be within [0, {self.hosts}), got {index}"
            )
        victim = NicSimParams(
            model="dpdk",
            workload="fixed",
            packet_size=512,
            offered_load_gbps=5.0,
            packets=self.victim_packets,
            ring_depth=64,
            payload_window=256 * KIB,
            dma_tags=12,
            retain_samples=False,
        )
        devices: list[NicSimParams] = [victim]
        names = ["victim"]
        load = self.host_aggressor_loads()[index]
        if load is not None:
            devices.append(
                NicSimParams(
                    model="kernel",
                    workload="imix",
                    offered_load_gbps=load,
                    packets=self.aggressor_packets,
                    payload_window=64 * MIB,
                    num_queues=4,
                    rss="zipf",
                    retain_samples=False,
                )
            )
            names.append("aggressor")
        return ContentionParams(
            devices=tuple(devices),
            names=tuple(names),
            system=self.system,
            iommu_enabled=self.iommu_enabled,
            arbiter=self.arbiter,
            seed=fleet_host_seed(self.run_seed, index),
        )

    def all_host_params(self) -> list[ContentionParams]:
        """Every host's contention run, in host order."""
        return [self.host_params(index) for index in range(self.hosts)]

    def label(self) -> str:
        """Compact human-readable description used in logs and reports."""
        parts = [
            FLEET_KIND,
            f"{self.hosts} hosts",
            f"placement={self.placement}",
            f"tenants={self.tenants}(zipf {self.tenant_skew:g})",
            f"profile={self.load_profile}",
            f"host={self.system}",
            f"arbiter={self.arbiter}",
            f"rack-load={self.rack_load_gbps:g}Gb/s",
        ]
        return " ".join(parts)

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation of the parameters."""
        return {
            "kind": FLEET_KIND,
            "hosts": self.hosts,
            "placement": self.placement,
            "tenants": self.tenants,
            "tenant_skew": self.tenant_skew,
            "load_profile": self.load_profile,
            "system": self.system,
            "arbiter": self.arbiter,
            "iommu_enabled": self.iommu_enabled,
            "victim_packets": self.victim_packets,
            "aggressor_packets": self.aggressor_packets,
            "rack_load_gbps": self.rack_load_gbps,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FleetParams":
        """Rebuild parameters from :meth:`as_dict` output."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FleetHostResult:
    """Streamed summary of one rack host's victim under its local load.

    Attributes:
        name: host label (``host0`` ..).
        seed: the derived per-host seed the run used.
        aggressor_load_gbps: the host's aggressor offered load (``None``
            when the placement left the host aggressor-free).
        victim_latency: the victim's streamed TX latency summary; its
            attached sketch is what the fleet-level reduce merges.
        victim_throughput_gbps: the victim's delivered throughput (RX
            path when present — tail drops are how contention becomes
            loss — else TX).
        victim_drops: the victim's dropped packets on that path.
    """

    name: str
    seed: int
    aggressor_load_gbps: float | None
    victim_latency: LatencySummary
    victim_throughput_gbps: float
    victim_drops: int

    @classmethod
    def from_contention(
        cls,
        name: str,
        seed: int,
        aggressor_load_gbps: float | None,
        result: ContentionResult,
    ) -> "FleetHostResult":
        """Summarise one host's contention run."""
        victim = result.device("victim").result
        if victim.tx.latency is None:
            raise ValidationError(
                f"host {name}: victim run carries no latency summary"
            )
        if victim.tx.latency.sketch is None:
            raise ValidationError(
                f"host {name}: victim run retained samples; fleet hosts "
                "must stream (retain_samples=False)"
            )
        delivery = victim.rx if victim.rx is not None else victim.tx
        return cls(
            name=name,
            seed=seed,
            aggressor_load_gbps=aggressor_load_gbps,
            victim_latency=victim.tx.latency,
            victim_throughput_gbps=delivery.throughput_gbps,
            victim_drops=delivery.drops,
        )

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "name": self.name,
            "seed": self.seed,
            "aggressor_load_gbps": self.aggressor_load_gbps,
            "victim_latency": self.victim_latency.as_dict(),
            "victim_throughput_gbps": self.victim_throughput_gbps,
            "victim_drops": self.victim_drops,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FleetHostResult":
        """Rebuild a host summary from :meth:`as_dict` output."""
        load = data.get("aggressor_load_gbps")
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            aggressor_load_gbps=None if load is None else float(load),  # type: ignore[arg-type]
            victim_latency=LatencySummary.from_dict(dict(data["victim_latency"])),  # type: ignore[arg-type]
            victim_throughput_gbps=float(data["victim_throughput_gbps"]),  # type: ignore[arg-type]
            victim_drops=int(data["victim_drops"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one rack-scale fleet run.

    ``fleet_latency`` is the rack-wide victim latency distribution: the
    per-host sketches merged *in host order* (merge order only affects the
    float mean accumulation — quantiles are exact under any order — and
    fixing it keeps serialised results bit-identical across ``jobs``).
    """

    params: FleetParams
    hosts: tuple[FleetHostResult, ...]
    fleet_latency: LatencySummary

    @property
    def kind(self) -> str:
        """Result kind tag (always ``"FLEET"``)."""
        return FLEET_KIND

    @classmethod
    def from_host_runs(
        cls,
        params: FleetParams,
        results: Sequence[ContentionResult],
    ) -> "FleetResult":
        """Reduce the ordered per-host contention runs into a fleet record."""
        if len(results) != params.hosts:
            raise ValidationError(
                f"expected {params.hosts} host results, got {len(results)}"
            )
        loads = params.host_aggressor_loads()
        hosts = tuple(
            FleetHostResult.from_contention(
                name,
                fleet_host_seed(params.run_seed, index),
                loads[index],
                result,
            )
            for index, (name, result) in enumerate(
                zip(params.host_names(), results)
            )
        )
        merged = QuantileSketch()
        for host in hosts:
            assert host.victim_latency.sketch is not None
            merged.merge(host.victim_latency.sketch)
        return cls(
            params=params,
            hosts=hosts,
            fleet_latency=LatencySummary.from_sketch(merged),
        )

    def host(self, name: str) -> FleetHostResult:
        """Look up one host's summary by label."""
        for host in self.hosts:
            if host.name == name:
                return host
        raise ValidationError(
            f"no host named {name!r}; hosts: "
            + ", ".join(host.name for host in self.hosts)
        )

    def slo_violation_fraction(
        self, threshold_ns: float, *, metric: str = "p99"
    ) -> float:
        """Fraction of hosts whose victim tail latency breaks an SLO.

        ``metric`` names a :class:`~repro.sim.nicsim.LatencySummary`
        percentile attribute (``"p90"``, ``"p99"``, ``"p999"`` ...); a host
        violates when that statistic exceeds ``threshold_ns``.
        """
        if threshold_ns <= 0.0:
            raise ValidationError(
                f"threshold_ns must be positive, got {threshold_ns}"
            )
        violations = sum(
            1
            for host in self.hosts
            if getattr(host.victim_latency, metric) > threshold_ns
        )
        return violations / len(self.hosts)

    def violating_hosts(
        self, threshold_ns: float, *, metric: str = "p99"
    ) -> tuple[str, ...]:
        """Names of the hosts breaking the SLO (same rule as the fraction)."""
        return tuple(
            host.name
            for host in self.hosts
            if getattr(host.victim_latency, metric) > threshold_ns
        )

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation (tagged ``"kind": "FLEET"``)."""
        return {
            "kind": FLEET_KIND,
            "params": self.params.as_dict(),
            "hosts": [host.as_dict() for host in self.hosts],
            "fleet_latency": self.fleet_latency.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FleetResult":
        """Rebuild a fleet record from :meth:`as_dict` output."""
        return cls(
            params=FleetParams.from_dict(dict(data["params"])),  # type: ignore[arg-type]
            hosts=tuple(
                FleetHostResult.from_dict(dict(host))
                for host in data["hosts"]  # type: ignore[union-attr]
            ),
            fleet_latency=LatencySummary.from_dict(
                dict(data["fleet_latency"])  # type: ignore[arg-type]
            ),
        )


def run_fleet_benchmark(
    params: FleetParams,
    *,
    jobs: int | None = None,
    profile_sink: list | None = None,
) -> FleetResult:
    """Run one rack-scale fleet benchmark as described by ``params``.

    Each host is an independent shared-host contention run (its seed a
    pure function of the fleet seed and its index), sharded across
    ``jobs`` worker processes via
    :meth:`~repro.bench.runner.BenchmarkRunner.run_all` — which returns
    results in input order — and reduced host by host.  ``jobs=1`` and
    ``jobs=N`` therefore produce bit-identical fleet records.

    ``profile_sink`` (a caller-owned list) collects each host's
    :class:`~repro.sim.engine.EngineProfile` in host order — the hook the
    ``pcie-bench fleet --engine-profile`` flag uses (distinct from the
    fleet ``--profile`` flag, which selects the *load* profile).  The
    profiles ride the serialised host results across the worker-process
    boundary: the hosts run with ``engine_profile=True``, so each
    :class:`~repro.sim.fabric.ContentionResult` carries its profile.
    """
    # Imported here: runner.py dispatches FleetParams back to this module,
    # so a module-level import would be circular.
    from .runner import BenchmarkRunner

    host_params = params.all_host_params()
    if profile_sink is not None:
        host_params = [
            host.with_(engine_profile=True) for host in host_params
        ]
    results = BenchmarkRunner().run_all(host_params, jobs=jobs)
    for result in results:
        if not isinstance(result, ContentionResult):
            raise ValidationError(
                f"fleet host run produced {type(result).__name__}, "
                "expected ContentionResult"
            )
    if profile_sink is not None:
        for name, result in zip(params.host_names(), results):
            if result.profile is None:  # type: ignore[union-attr]
                raise ValidationError(
                    f"host {name}: profiled fleet run returned no "
                    "engine profile"
                )
            profile_sink.append(result.profile)  # type: ignore[union-attr]
    return FleetResult.from_host_runs(params, results)  # type: ignore[arg-type]
