"""Benchmark suite runner: the simulated counterpart of the control programs.

The NFP control program of §5.4 runs individual tests or a full suite of
roughly 2500 tests (about four hours on hardware).  :class:`BenchmarkRunner`
plays that role here: it executes lists of :class:`BenchmarkParams`, reuses
host systems across runs on the same configuration, supports parameter
sweeps, and can persist results for later analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..errors import BenchmarkError
from ..sim.dma import DmaEngine
from ..sim.host import HostSystem
from .bandwidth import run_bandwidth_benchmark
from .latency import run_latency_benchmark
from .params import BenchmarkKind, BenchmarkParams, WINDOW_SWEEP
from .results import BenchmarkResult, save_results_csv, save_results_json


@dataclass
class BenchmarkRunner:
    """Executes micro-benchmarks, caching host systems per configuration.

    Attributes:
        keep_samples: attach raw latency samples to latency results.
        progress: optional callback invoked as ``progress(index, total,
            params)`` before each run (used by the CLI for status output).
    """

    keep_samples: bool = False
    progress: Callable[[int, int, BenchmarkParams], None] | None = None
    _hosts: dict[tuple[str, bool, int, object], HostSystem] = field(
        default_factory=dict, repr=False
    )

    def host_for(self, params: BenchmarkParams) -> HostSystem:
        """Host system for a parameter set, building it on first use.

        Hosts are keyed by (system, IOMMU state, page size, seed) so sweeps
        over window or transfer size share one host the way a real suite
        shares one machine.
        """
        key = (
            params.system.lower(),
            params.iommu_enabled,
            params.iommu_page_size,
            params.seed,
        )
        if key not in self._hosts:
            seed_kwargs = {} if params.seed is None else {"seed": params.seed}
            self._hosts[key] = HostSystem.from_profile(
                params.system,
                iommu_enabled=params.iommu_enabled,
                iommu_page_size=params.iommu_page_size,
                **seed_kwargs,
            )
        return self._hosts[key]

    def run(self, params: BenchmarkParams) -> BenchmarkResult:
        """Run a single benchmark."""
        host = self.host_for(params)
        engine = DmaEngine(host)
        if params.kind.is_latency:
            return run_latency_benchmark(
                params, host=host, engine=engine, keep_samples=self.keep_samples
            )
        return run_bandwidth_benchmark(params, host=host, engine=engine)

    def run_all(self, params_list: Sequence[BenchmarkParams]) -> list[BenchmarkResult]:
        """Run a list of benchmarks in order."""
        results = []
        total = len(params_list)
        for index, params in enumerate(params_list):
            if self.progress is not None:
                self.progress(index, total, params)
            results.append(self.run(params))
        return results

    # -- sweeps -------------------------------------------------------------------

    def sweep_transfer_size(
        self, base: BenchmarkParams, sizes: Iterable[int]
    ) -> list[BenchmarkResult]:
        """Run the same benchmark across a list of transfer sizes."""
        return self.run_all([base.with_(transfer_size=size) for size in sizes])

    def sweep_window_size(
        self, base: BenchmarkParams, windows: Iterable[int] = WINDOW_SWEEP
    ) -> list[BenchmarkResult]:
        """Run the same benchmark across a list of window sizes."""
        return self.run_all([base.with_(window_size=window) for window in windows])

    def sweep_cache_state(
        self, base: BenchmarkParams, states: Iterable[str] = ("cold", "host_warm")
    ) -> list[BenchmarkResult]:
        """Run the same benchmark for each cache preparation state."""
        return self.run_all([base.with_(cache_state=state) for state in states])

    # -- persistence ---------------------------------------------------------------

    @staticmethod
    def save(
        results: Sequence[BenchmarkResult],
        path: str | Path,
        *,
        fmt: str = "json",
    ) -> None:
        """Persist results as JSON or CSV depending on ``fmt``."""
        if fmt == "json":
            save_results_json(results, path)
        elif fmt == "csv":
            save_results_csv(results, path)
        else:
            raise BenchmarkError(f"unknown result format {fmt!r} (use 'json' or 'csv')")


def full_suite_params(
    *,
    system: str = "NFP6000-HSW",
    transfer_sizes: Sequence[int] = (8, 64, 128, 256, 512, 1024, 2048),
    windows: Sequence[int] = WINDOW_SWEEP,
    cache_states: Sequence[str] = ("cold", "host_warm"),
    kinds: Sequence[BenchmarkKind] = tuple(BenchmarkKind),
) -> list[BenchmarkParams]:
    """Build the cross-product parameter list of a full pcie-bench suite run.

    The defaults generate a few hundred tests, a scaled-down analogue of the
    ~2500-test suite the paper's control program executes.
    """
    params = []
    for kind in kinds:
        for size in transfer_sizes:
            for window in windows:
                if window < size:
                    continue
                for state in cache_states:
                    params.append(
                        BenchmarkParams(
                            kind=kind,
                            transfer_size=size,
                            window_size=window,
                            cache_state=state,
                            system=system,
                        )
                    )
    return params
