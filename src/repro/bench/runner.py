"""Benchmark suite runner: the simulated counterpart of the control programs.

The NFP control program of §5.4 runs individual tests or a full suite of
roughly 2500 tests (about four hours on hardware).  :class:`BenchmarkRunner`
plays that role here: it executes lists of :class:`BenchmarkParams` (and
:class:`~repro.bench.nicsim.NicSimParams` datapath simulations), reuses host
systems across runs on the same configuration, supports parameter sweeps,
can fan independent parameter sets out over a process pool, and can persist
results for later analysis.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..errors import BenchmarkError, ValidationError
from ..sim.dma import DmaEngine
from ..sim.fabric import ContentionResult
from ..sim.host import HostSystem
from ..sim.nicsim import NicSimResult
from .bandwidth import run_bandwidth_benchmark
from .contention import (
    FOUR_DEVICE_NAMES,
    ContentionParams,
    four_device_mix,
    noisy_neighbour_pair,
    run_contention_benchmark,
)
from .fleet import FleetParams, FleetResult, run_fleet_benchmark
from .latency import run_latency_benchmark
from .nicsim import NicSimParams, run_nicsim_benchmark
from .params import BenchmarkKind, BenchmarkParams, WINDOW_SWEEP
from .results import BenchmarkResult, save_results_csv, save_results_json

#: Anything the runner can execute.
RunnableParams = BenchmarkParams | NicSimParams | ContentionParams | FleetParams
#: Anything the runner can produce.
RunnerResult = BenchmarkResult | NicSimResult | ContentionResult | FleetResult


@dataclass
class BenchmarkRunner:
    """Executes micro-benchmarks, caching host systems per configuration.

    Attributes:
        keep_samples: attach raw latency samples to latency results.
        progress: optional callback invoked as ``progress(index, total,
            params)`` before each run (used by the CLI for status output).
            With parallel execution it fires as runs complete, with a
            running completion count as the index.
    """

    keep_samples: bool = False
    progress: Callable[[int, int, RunnableParams], None] | None = None
    _hosts: dict[tuple[str, bool, int, object], HostSystem] = field(
        default_factory=dict, repr=False
    )

    def host_for(self, params: BenchmarkParams) -> HostSystem:
        """Host system for a parameter set, building it on first use.

        Hosts are keyed by (system, IOMMU state, page size, seed) so
        repeated ``run`` calls on the same configuration share one host the
        way an interactive session shares one machine.  (``run_all``
        deliberately bypasses this cache; see its docstring.)
        """
        key = _host_key(params)
        if key not in self._hosts:
            seed_kwargs = {} if params.seed is None else {"seed": params.seed}
            self._hosts[key] = HostSystem.from_profile(
                params.system,
                iommu_enabled=params.iommu_enabled,
                iommu_page_size=params.iommu_page_size,
                **seed_kwargs,
            )
        return self._hosts[key]

    def run(self, params: RunnableParams) -> RunnerResult:
        """Run a single benchmark (micro-benchmark, simulation or contention)."""
        if isinstance(params, FleetParams):
            return run_fleet_benchmark(params)
        if isinstance(params, ContentionParams):
            return run_contention_benchmark(params)
        if isinstance(params, NicSimParams):
            return run_nicsim_benchmark(params)
        host = self.host_for(params)
        engine = DmaEngine(host)
        if params.kind.is_latency:
            return run_latency_benchmark(
                params, host=host, engine=engine, keep_samples=self.keep_samples
            )
        return run_bandwidth_benchmark(params, host=host, engine=engine)

    def run_all(
        self,
        params_list: Sequence[RunnableParams],
        *,
        jobs: int | None = None,
    ) -> list[RunnerResult]:
        """Run a list of benchmarks, optionally over a process pool.

        ``run_all`` executes every parameter set in *isolation*: each run
        gets a freshly built host, so its result depends only on its own
        parameters (and seed), never on its position in the list.  That is
        what makes the parameter sets independent and lets ``jobs`` fan
        them out over worker processes with results identical — same
        ordering, equal values — to the serial path.  (``run`` by contrast
        reuses cached hosts across calls, the way an interactive session
        on one machine would.)

        Args:
            params_list: the benchmarks to run.
            jobs: worker process count; ``None`` or 1 runs serially.
        """
        if jobs is not None and jobs <= 0:
            raise ValidationError(f"jobs must be positive, got {jobs}")
        total = len(params_list)
        if jobs is None or jobs == 1 or total <= 1:
            results = []
            for index, params in enumerate(params_list):
                if self.progress is not None:
                    self.progress(index, total, params)
                results.append(_run_isolated(self.keep_samples, params))
            return results

        chunk_size = max(1, -(-total // (jobs * 4)))
        indexed = list(enumerate(params_list))
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, total, chunk_size)
        ]
        ordered: list[RunnerResult | None] = [None] * total
        completed = 0
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _run_chunk, self.keep_samples, [params for _, params in chunk]
                ): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                for (index, params), result in zip(chunk, future.result()):
                    ordered[index] = result
                    if self.progress is not None:
                        self.progress(completed, total, params)
                        completed += 1
        assert all(result is not None for result in ordered)
        return list(ordered)  # type: ignore[arg-type]

    # -- sweeps -------------------------------------------------------------------

    def sweep_transfer_size(
        self, base: BenchmarkParams, sizes: Iterable[int]
    ) -> list[BenchmarkResult]:
        """Run the same benchmark across a list of transfer sizes."""
        return self.run_all([base.with_(transfer_size=size) for size in sizes])

    def sweep_window_size(
        self, base: BenchmarkParams, windows: Iterable[int] = WINDOW_SWEEP
    ) -> list[BenchmarkResult]:
        """Run the same benchmark across a list of window sizes."""
        return self.run_all([base.with_(window_size=window) for window in windows])

    def sweep_cache_state(
        self, base: BenchmarkParams, states: Iterable[str] = ("cold", "host_warm")
    ) -> list[BenchmarkResult]:
        """Run the same benchmark for each cache preparation state."""
        return self.run_all([base.with_(cache_state=state) for state in states])

    # -- persistence ---------------------------------------------------------------

    @staticmethod
    def save(
        results: Sequence[RunnerResult],
        path: str | Path,
        *,
        fmt: str = "json",
    ) -> None:
        """Persist results as JSON or CSV depending on ``fmt``.

        JSON accepts any mix of micro-benchmark and datapath-simulation
        results; the flat CSV schema is keyed on micro-benchmark parameters
        and rejects simulation results.
        """
        if fmt == "json":
            save_results_json(results, path)
        elif fmt == "csv":
            if any(
                isinstance(result, (NicSimResult, ContentionResult, FleetResult))
                for result in results
            ):
                raise BenchmarkError(
                    "CSV export supports micro-benchmark results only; "
                    "save simulation and contention runs as JSON"
                )
            save_results_csv(results, path)  # type: ignore[arg-type]
        else:
            raise BenchmarkError(f"unknown result format {fmt!r} (use 'json' or 'csv')")


def _host_key(params: BenchmarkParams) -> tuple[str, bool, int, object]:
    """The host-sharing key: system, IOMMU state, page size and seed."""
    return (
        params.system.lower(),
        params.iommu_enabled,
        params.iommu_page_size,
        params.seed,
    )


def _run_isolated(keep_samples: bool, params: RunnableParams) -> RunnerResult:
    """Run one parameter set on a freshly built host.

    Because nothing is shared between runs, serial and parallel execution
    of ``run_all`` produce identical results by construction.
    """
    if isinstance(params, FleetParams):
        # A fleet nested inside run_all executes its hosts serially in
        # this worker; its result is order-reduced and jobs-invariant.
        return run_fleet_benchmark(params)
    if isinstance(params, ContentionParams):
        return run_contention_benchmark(params)
    if isinstance(params, NicSimParams):
        return run_nicsim_benchmark(params)
    if params.kind.is_latency:
        return run_latency_benchmark(params, keep_samples=keep_samples)
    return run_bandwidth_benchmark(params)


def _run_chunk(
    keep_samples: bool, params_chunk: list[RunnableParams]
) -> list[RunnerResult]:
    """Process-pool worker entry point: run one chunk of isolated params."""
    return [_run_isolated(keep_samples, params) for params in params_chunk]


def full_suite_params(
    *,
    system: str = "NFP6000-HSW",
    transfer_sizes: Sequence[int] = (8, 64, 128, 256, 512, 1024, 2048),
    windows: Sequence[int] = WINDOW_SWEEP,
    cache_states: Sequence[str] = ("cold", "host_warm"),
    kinds: Sequence[BenchmarkKind] = tuple(BenchmarkKind),
    include_contention: bool = False,
) -> list[RunnableParams]:
    """Build the cross-product parameter list of a full pcie-bench suite run.

    The defaults generate a few hundred tests, a scaled-down analogue of the
    ~2500-test suite the paper's control program executes.  Combinations
    whose window is smaller than the transfer size are skipped, and
    duplicate combinations (overlapping ``transfer_sizes``/``windows``
    inputs) are generated only once.  ``include_contention`` appends the
    shared-host contention scenarios from :func:`contention_suite_params`,
    so the suite count reflects the multi-device matrix too.
    """
    params: list[RunnableParams] = []
    seen: set[BenchmarkParams] = set()
    for kind in kinds:
        for size in transfer_sizes:
            for window in windows:
                if window < size:
                    continue
                for state in cache_states:
                    candidate = BenchmarkParams(
                        kind=kind,
                        transfer_size=size,
                        window_size=window,
                        cache_state=state,
                        system=system,
                    )
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    params.append(candidate)
    if include_contention:
        params.extend(contention_suite_params(system=system))
    return params


def contention_suite_params(
    *,
    system: str = "NFP6000-HSW",
    arbiters: Sequence[str] = ("fcfs", "rr", "wrr"),
    packets: int = 800,
) -> list[ContentionParams]:
    """The shared-host contention scenarios of a full suite run.

    One noisy-neighbour pair (the canonical victim/aggressor devices of
    :func:`~repro.bench.contention.noisy_neighbour_pair`, shared IOMMU)
    per arbitration scheme, with the ``wrr`` entry weighted 8:1 in the
    victim's favour, plus two four-device scenarios (the
    :func:`~repro.bench.contention.four_device_mix`): a weighted flat
    fabric and a switch-tree topology with the victim on its own root
    port — small enough to ride along the classic suite, broad enough to
    exercise every scheme and N > 2 devices.
    """
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=packets, aggressor_packets=8 * packets
    )
    scenarios = [
        ContentionParams(
            devices=(victim, aggressor),
            names=("victim", "aggressor"),
            system=system,
            iommu_enabled=True,
            arbiter=arbiter,
            weights=(8.0, 1.0) if arbiter == "wrr" else None,
        )
        for arbiter in arbiters
    ]
    quad = four_device_mix(
        victim_packets=packets, aggressor_packets=4 * packets
    )
    scenarios.append(
        ContentionParams(
            devices=quad,
            names=FOUR_DEVICE_NAMES,
            system=system,
            iommu_enabled=True,
            arbiter="wrr",
            weights=(8.0, 1.0, 2.0, 2.0),
        )
    )
    scenarios.append(
        ContentionParams(
            devices=quad,
            names=FOUR_DEVICE_NAMES,
            system=system,
            iommu_enabled=True,
            arbiter="fcfs",
            topology=(
                "victim=root,aggressor=sw0,bulk2=sw0,"
                "streamer=sw1,sw0=root,sw1=root"
            ),
        )
    )
    return scenarios
