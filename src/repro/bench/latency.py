"""Latency micro-benchmarks: ``LAT_RD`` and ``LAT_WRRD`` (§4.1).

``LAT_RD`` times individual DMA reads from issue to completion signal.
Because PCIe memory writes are posted, write latency cannot be observed
directly; ``LAT_WRRD`` instead times a DMA write followed by a DMA read of
the same address, relying on PCIe ordering to make the read wait for the
write.
"""

from __future__ import annotations

from ..errors import BenchmarkError
from ..sim.dma import DmaEngine
from ..sim.host import HostSystem
from .params import BenchmarkKind, BenchmarkParams, NumaPlacement
from .results import BenchmarkResult
from .stats import LatencyStats


def run_latency_benchmark(
    params: BenchmarkParams,
    *,
    host: HostSystem | None = None,
    engine: DmaEngine | None = None,
    keep_samples: bool = False,
) -> BenchmarkResult:
    """Run ``LAT_RD`` or ``LAT_WRRD`` as described by ``params``.

    Args:
        params: the benchmark description; ``params.kind`` must be a latency
            benchmark.
        host: an existing host system to reuse (built from ``params.system``
            when omitted).  Reusing a host across runs keeps its caches and
            RNG streams, which is what a real suite run does.
        engine: an existing DMA engine to reuse.
        keep_samples: attach the raw per-transaction samples to the result
            (needed for CDFs; costs memory for large sample counts).

    Returns:
        A :class:`BenchmarkResult` with latency statistics.
    """
    if not params.kind.is_latency:
        raise BenchmarkError(
            f"run_latency_benchmark got a bandwidth benchmark: {params.kind.value}"
        )
    host = host or _build_host(params)
    engine = engine or DmaEngine(host)
    buffer = host.allocate_buffer(
        params.window_size,
        params.transfer_size,
        offset=params.offset,
        node=params.placement.value,
        page_size=params.iommu_page_size if params.iommu_enabled else None,
    )
    host.prepare(buffer, params.cache_state)
    measurement = engine.measure_latency(
        buffer,
        params.kind.dma_operation,
        params.effective_transactions,
        pattern=params.pattern,
        use_command_interface=params.use_command_interface,
    )
    stats = LatencyStats.from_samples(measurement.samples_ns)
    return BenchmarkResult(
        params=params,
        latency=stats,
        cache_hit_rate=measurement.cache_hit_rate,
        iotlb_miss_rate=measurement.iotlb_miss_rate,
        samples_ns=measurement.samples_ns if keep_samples else None,
    )


def lat_rd(
    transfer_size: int,
    *,
    system: str = "NFP6000-HSW",
    window_size: int | None = None,
    cache_state: str = "host_warm",
    **overrides: object,
) -> BenchmarkResult:
    """Convenience wrapper: run ``LAT_RD`` with common defaults.

    Additional keyword arguments are forwarded to :class:`BenchmarkParams`.
    """
    params = BenchmarkParams(
        kind=BenchmarkKind.LAT_RD,
        transfer_size=transfer_size,
        window_size=window_size or max(8 * 1024, transfer_size),
        cache_state=cache_state,
        system=system,
        **overrides,  # type: ignore[arg-type]
    )
    return run_latency_benchmark(params)


def lat_wrrd(
    transfer_size: int,
    *,
    system: str = "NFP6000-HSW",
    window_size: int | None = None,
    cache_state: str = "host_warm",
    **overrides: object,
) -> BenchmarkResult:
    """Convenience wrapper: run ``LAT_WRRD`` with common defaults."""
    params = BenchmarkParams(
        kind=BenchmarkKind.LAT_WRRD,
        transfer_size=transfer_size,
        window_size=window_size or max(8 * 1024, transfer_size),
        cache_state=cache_state,
        system=system,
        **overrides,  # type: ignore[arg-type]
    )
    return run_latency_benchmark(params)


def _build_host(params: BenchmarkParams) -> HostSystem:
    seed_kwargs = {} if params.seed is None else {"seed": params.seed}
    return HostSystem.from_profile(
        params.system,
        iommu_enabled=params.iommu_enabled,
        iommu_page_size=params.iommu_page_size,
        **seed_kwargs,
    )
