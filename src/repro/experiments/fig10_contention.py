"""Figure 10 (new): the shared-host noisy-neighbour effect and its cure.

The paper's §7 speculates that host-side PCIe resources — root-complex
ingress, the IOMMU page walker, the DDIO'd LLC — become a contended,
*unfair* bottleneck once several devices share them.  This experiment
exercises that claim with the :mod:`repro.sim.fabric` subsystem: a
latency-sensitive victim (fixed-size, low offered load, small warm buffer,
a modest DMA-tag pool) shares one host with a bulk IMIX aggressor whose
64 MiB payload window blows through the IOTLB reach, so nearly every
aggressor DMA queues a page walk on the *shared* walker.

* **Degradation.**  With no arbitration (``fcfs``, the un-arbitrated
  baseline where the oldest request wins), the victim's TX p99 latency
  degrades by well over 10% against its solo baseline, and its delivered
  RX throughput drops ≥ 10% as stalls hold its DMA tags and overflow its
  RX ring — the noisy-neighbour effect, reproduced from first principles.
* **Protection.**  Weighted arbitration (``wrr``, victim weighted 8:1)
  cuts both degradations to less than half of the un-arbitrated level:
  per-device upstream queues mean the victim's sparse requests no longer
  wait behind the aggressor's backlog.
* **Fairness.**  The Jain index over per-device p99 slowdowns quantifies
  it: close to its floor under ``fcfs`` (one device absorbs the whole
  penalty), near 1.0 under ``wrr`` (everyone slows equally or less).
* **Degeneracy.**  A single-device fabric run is *identical* to the plain
  host-coupled datapath — the contention subsystem adds nothing when
  there is nothing to contend with.
"""

from __future__ import annotations

from ..analysis.contention import device_slowdowns, jain_fairness_index
from ..bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
    solo_device_params,
)
from ..bench.nicsim import NicSimParams, run_nicsim_benchmark
from ..sim.fabric import ContentionResult
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-10-contention"
TITLE = (
    "Shared-host noisy neighbour: victim degradation under a bulk "
    "aggressor, and weighted arbitration as the cure (a §7 question)"
)

#: Shared host: any Table 1 profile works; the effect needs the IOMMU on
#: (4 KiB pages) so both devices translate through one IOTLB and walker.
SYSTEM = "NFP6000-HSW"
#: Arbitration schemes compared (fcfs is the un-arbitrated baseline).
SCHEMES = ("fcfs", "rr", "wrr")
#: wrr weights: victim over aggressor.
WEIGHTS = (8.0, 1.0)
#: Required victim degradation (vs solo) under un-arbitrated fcfs; the
#: wrr checks are relative (residual <= half the fcfs degradation).
DEGRADATION_FLOOR = 0.10


def _devices(quick: bool) -> tuple[NicSimParams, NicSimParams]:
    # The canonical pair the CLI and suite also use; the aggressor must
    # stay saturating for the victim's whole measured window, hence the
    # ~8x packet count.
    return noisy_neighbour_pair(
        victim_packets=600 if quick else 1200,
        aggressor_packets=5000 if quick else 10000,
    )


def _params(quick: bool, arbiter: str) -> ContentionParams:
    victim, aggressor = _devices(quick)
    return ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system=SYSTEM,
        iommu_enabled=True,
        arbiter=arbiter,
        weights=WEIGHTS if arbiter == "wrr" else None,
    )


def _victim_metrics(result: ContentionResult) -> tuple[float, float]:
    """(TX p99 latency, delivered RX throughput) of the victim."""
    victim = result.device("victim").result
    assert victim.tx.latency is not None
    assert victim.rx is not None
    return victim.tx.latency.p99, victim.rx.throughput_gbps


def run(quick: bool = True) -> ExperimentResult:
    """Contend victim and aggressor under each arbiter; check the §7 story."""
    base = _params(quick, "fcfs")

    # Solo baselines: each device alone on an identical (private) host —
    # plain host-coupled NICSIM runs, which by the fabric's degenerate-case
    # contract equal one-device fabric runs bit for bit.
    solo_results = {
        name: run_nicsim_benchmark(solo_device_params(base, index))
        for index, name in enumerate(base.device_names())
    }
    solo_victim = solo_results["victim"]
    assert solo_victim.tx.latency is not None
    assert solo_victim.rx is not None
    solo_p99 = solo_victim.tx.latency.p99
    solo_rx_gbps = solo_victim.rx.throughput_gbps
    solo_dicts = {
        name: result.as_dict() for name, result in solo_results.items()
    }

    contended: dict[str, ContentionResult] = {
        arbiter: run_contention_benchmark(_params(quick, arbiter))
        for arbiter in SCHEMES
    }

    # One-device fabric run of the victim: must match its solo NICSIM run.
    degenerate = run_contention_benchmark(
        base.with_(
            devices=(base.devices[0],), names=("victim",), weights=None
        )
    )
    degenerate_victim = degenerate.devices[0].result

    def degradation(arbiter: str) -> tuple[float, float]:
        p99, rx_gbps = _victim_metrics(contended[arbiter])
        return (p99 - solo_p99) / solo_p99, (solo_rx_gbps - rx_gbps) / solo_rx_gbps

    fcfs_p99_deg, fcfs_rx_deg = degradation("fcfs")
    wrr_p99_deg, wrr_rx_deg = degradation("wrr")

    fairness = {
        arbiter: jain_fairness_index(
            [
                factors["p99"]
                for factors in device_slowdowns(
                    contended[arbiter].as_dict(), solo_dicts
                ).values()
            ]
        )
        for arbiter in SCHEMES
    }

    aggressor_fcfs = contended["fcfs"].device("aggressor").result
    aggressor_wrr = contended["wrr"].device("aggressor").result

    checks = [
        Check(
            "A bulk IMIX aggressor on the shared walker/ingress degrades "
            "the victim's TX p99 by >= 10% (the noisy-neighbour effect)",
            fcfs_p99_deg >= DEGRADATION_FLOOR,
            f"p99 {solo_p99:.0f} ns solo -> "
            f"{_victim_metrics(contended['fcfs'])[0]:.0f} ns contended "
            f"({fcfs_p99_deg * 100:+.0f}%)",
        ),
        Check(
            "The victim's delivered RX throughput also degrades >= 10% "
            "(stalled tags overflow its RX ring into tail drops)",
            fcfs_rx_deg >= DEGRADATION_FLOOR,
            f"RX {solo_rx_gbps:.2f} Gb/s solo -> "
            f"{_victim_metrics(contended['fcfs'])[1]:.2f} Gb/s contended "
            f"({fcfs_rx_deg * 100:.0f}% lost)",
        ),
        Check(
            "Weighted arbitration (wrr 8:1) cuts the victim's p99 "
            "degradation to less than half the un-arbitrated level",
            wrr_p99_deg <= fcfs_p99_deg / 2,
            f"{fcfs_p99_deg * 100:+.0f}% fcfs -> {wrr_p99_deg * 100:+.0f}% wrr",
        ),
        Check(
            "Weighted arbitration also recovers the victim's throughput "
            "(residual loss less than half the un-arbitrated loss)",
            wrr_rx_deg <= fcfs_rx_deg / 2,
            f"{fcfs_rx_deg * 100:.0f}% fcfs -> {wrr_rx_deg * 100:.0f}% wrr lost",
        ),
        Check(
            "Arbitration restores fairness: the Jain index over p99 "
            "slowdowns rises from fcfs to wrr and ends near 1.0",
            fairness["wrr"] > fairness["fcfs"] and fairness["wrr"] >= 0.9,
            ", ".join(
                f"{arbiter}: {fairness[arbiter]:.3f}" for arbiter in SCHEMES
            ),
        ),
        Check(
            "Protection is not starvation: the aggressor keeps at least "
            "half its un-arbitrated throughput under wrr",
            aggressor_wrr.throughput_gbps
            >= 0.5 * aggressor_fcfs.throughput_gbps,
            f"aggressor {aggressor_fcfs.throughput_gbps:.1f} Gb/s fcfs vs "
            f"{aggressor_wrr.throughput_gbps:.1f} Gb/s wrr",
        ),
        Check(
            "Degenerate case: a single-device fabric run is identical to "
            "the plain host-coupled datapath (solo baseline)",
            degenerate_victim == solo_victim,
            f"throughput {degenerate_victim.throughput_gbps:.6f} vs "
            f"{solo_victim.throughput_gbps:.6f} Gb/s, p99 "
            f"{degenerate_victim.tx.latency.p99:.3f} vs {solo_p99:.3f} ns",
        ),
    ]

    table_rows = []
    for arbiter in SCHEMES:
        result = contended[arbiter]
        for device in result.devices:
            nic = device.result
            assert nic.tx.latency is not None
            table_rows.append(
                [
                    f"{arbiter}, {device.name}",
                    _delivery(nic),
                    nic.tx.latency.p99,
                    nic.total_drops,
                    device.ingress.wait_ns_mean if device.ingress else 0.0,
                    device.walker.wait_ns_mean if device.walker else 0.0,
                ]
            )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=[
            "scenario",
            "delivered (Gb/s)",
            "TX p99 (ns)",
            "drops",
            "mean ingress wait (ns)",
            "mean walker wait (ns)",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            f"Victim: DPDK model, 512 B fixed at 5 Gb/s, 64-deep rings, "
            f"256 KiB warm window, 12 DMA tags.  Aggressor: kernel model, "
            f"saturating IMIX, 64 MiB window (far beyond the IOTLB reach, "
            f"so nearly every DMA walks).  Shared {SYSTEM} host, IOMMU on "
            "(4 KiB pages).",
            "fcfs is the un-arbitrated baseline: the victim's sparse "
            "requests queue behind the aggressor's whole walker backlog.  "
            "rr and wrr give each device its own upstream queue; wrr "
            "weights the victim 8:1.",
            "Solo baselines are plain host-coupled NICSIM runs; the "
            "degenerate-case check confirms they equal one-device fabric "
            "runs exactly, so the slowdowns are measured against the same "
            "machinery.",
        ],
    )


def _delivery(result) -> float:
    """Delivered throughput: RX path when present (drops show), else TX."""
    path = result.rx if result.rx is not None else result.tx
    return path.throughput_gbps
