"""Figure 1 (simulated): packet-level datapath runs vs the analytic curves.

Where :mod:`repro.experiments.fig1_throughput_models` evaluates the Section 3
NIC interaction models in closed form, this experiment drives the same three
models through the packet-level datapath simulator
(:mod:`repro.sim.nicsim`) and checks two things:

* **Agreement where the model applies.**  Under fixed-size, smooth,
  full-duplex load — the model's own premise — simulated steady-state
  throughput must land within 10% of
  :meth:`~repro.core.nic.NicModel.throughput_gbps` for every Figure 1
  model at every sampled packet size.
* **New behaviour where it does not.**  Under IMIX and bursty traffic the
  simulator exposes quantities the closed form averages away: per-packet
  latency percentiles (interrupt moderation visibly penalises the kernel
  driver against DPDK polling) and descriptor-ring occupancy (bursts drive
  the ring far above its smooth-load level at the same offered load).
"""

from __future__ import annotations

from ..core.nic import FIGURE1_MODELS, MODERN_NIC_DPDK, MODERN_NIC_KERNEL
from ..sim.nicsim import cross_validate, simulate_nic
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-1-sim"
TITLE = "Simulated NIC datapath vs analytic model (packet-level cross-validation)"

#: Tolerance for the analytic cross-validation (acceptance criterion).
TOLERANCE = 0.10
#: Offered load (Gb/s per direction) for the latency/occupancy scenarios —
#: comfortably below every model's capacity at the scenario sizes so the
#: differences measured are driver behaviour, not saturation.
SCENARIO_LOAD_GBPS = 24.0


def run(quick: bool = True) -> ExperimentResult:
    """Cross-validate the simulator and probe IMIX/bursty behaviour."""
    sizes = (64, 512, 1500) if quick else (64, 256, 512, 1024, 1500)
    packets = 1500 if quick else 6000
    scenario_packets = 2500 if quick else 8000

    series: dict[str, list[tuple[float, float]]] = {}
    checks: list[Check] = []
    for model in FIGURE1_MODELS:
        points = cross_validate(model, sizes, packets=packets)
        series[f"{model.name} (model)"] = [
            (float(point.packet_size), point.analytic_gbps) for point in points
        ]
        series[f"{model.name} (sim)"] = [
            (float(point.packet_size), point.simulated_gbps) for point in points
        ]
        worst = max(point.relative_error for point in points)
        checks.append(
            Check(
                f"{model.name}: simulated throughput within 10% of the "
                "analytic model at every sampled size",
                all(point.within(TOLERANCE) for point in points),
                f"worst deviation {worst * 100:.1f}% over {len(points)} sizes",
            )
        )

    # Scenarios the closed form cannot express: mixed sizes, moderation
    # latency, burst-driven ring occupancy and drops.
    kernel_imix = simulate_nic(
        MODERN_NIC_KERNEL, "imix", packets=scenario_packets,
        load_gbps=SCENARIO_LOAD_GBPS,
    )
    dpdk_imix = simulate_nic(
        MODERN_NIC_DPDK, "imix", packets=scenario_packets,
        load_gbps=SCENARIO_LOAD_GBPS,
    )
    smooth = simulate_nic(
        MODERN_NIC_DPDK, "fixed", packets=scenario_packets, packet_size=512,
        load_gbps=SCENARIO_LOAD_GBPS,
    )
    bursty = simulate_nic(
        MODERN_NIC_DPDK, "bursty", packets=scenario_packets, packet_size=512,
        load_gbps=SCENARIO_LOAD_GBPS,
    )

    assert kernel_imix.rx is not None and dpdk_imix.rx is not None
    assert smooth.rx is not None and bursty.rx is not None
    checks.append(
        Check(
            "Interrupt moderation inflates kernel-driver RX completion "
            "latency beyond DPDK polling under IMIX load",
            kernel_imix.rx.latency is not None
            and dpdk_imix.rx.latency is not None
            and kernel_imix.rx.latency.p99 > dpdk_imix.rx.latency.p99,
            f"RX p99 kernel {kernel_imix.rx.latency.p99:.0f} ns vs "
            f"DPDK {dpdk_imix.rx.latency.p99:.0f} ns",
        )
    )
    checks.append(
        Check(
            "Bursty arrivals drive RX ring occupancy far above the "
            "smooth-arrival level at equal offered load",
            bursty.rx.ring.max_occupancy > 2 * smooth.rx.ring.max_occupancy,
            f"max RX occupancy bursty {bursty.rx.ring.max_occupancy} vs "
            f"smooth {smooth.rx.ring.max_occupancy} (depth "
            f"{bursty.rx.ring.depth})",
        )
    )

    table_rows = [
        _scenario_row("kernel / imix", kernel_imix),
        _scenario_row("dpdk / imix", dpdk_imix),
        _scenario_row("dpdk / fixed 512B", smooth),
        _scenario_row("dpdk / bursty 512B", bursty),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Packet size (B)",
        y_label="Throughput (Gb/s)",
        table_headers=[
            "scenario",
            "throughput (Gb/s)",
            "RX p50 (ns)",
            "RX p99 (ns)",
            "RX ring mean",
            "RX ring max",
            "drops",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            "Cross-validation runs fixed-size saturating full-duplex load "
            "with lossless RX (the analytic model's premise); scenario rows "
            f"run at {SCENARIO_LOAD_GBPS:g} Gb/s offered load per direction "
            "with realistic RX tail-drop.",
            "Latency is arrival-to-completion-report: the interrupt for "
            "interrupt-driven drivers, the descriptor write-back for "
            "polling drivers — which is why moderation shows up in the "
            "percentiles.",
        ],
    )


def _scenario_row(name: str, result) -> list[object]:
    rx = result.rx
    latency = rx.latency
    return [
        name,
        result.throughput_gbps,
        latency.median if latency is not None else float("nan"),
        latency.p99 if latency is not None else float("nan"),
        rx.ring.mean_occupancy,
        float(rx.ring.max_occupancy),
        result.total_drops,
    ]
