"""Figure 13 (new): closed-loop control over the shared-host QoS knobs.

Figure 10 showed that *hand-tuned* QoS knobs (weighted arbitration, RSS
steering, DDIO shares) cure shared-host contention — but hand-tuning
presumes an operator who already knows which device is the victim and
which flow is the elephant.  This experiment closes the loop: the
:mod:`repro.control` runtime watches per-window streamed stats inside
the event loop and retunes the same knobs mid-run, with no workload
foreknowledge.  Two pathologies, three policies each:

* **Scenario A — noisy neighbour, weights knob.**  The figure-10 pair
  (latency-sensitive victim, bulk IMIX aggressor) on one IOMMU-enabled
  host, but with the ``wrr`` weights *mis*-tuned 1:16 in the
  aggressor's favour (yesterday's tuning for today's workload).  The
  reactive policies must notice the victim's wait-dominated windows and
  shift weight back, recovering most of the victim-p99 gap between the
  mis-tuned and hand-tuned (8:1) static configurations.
* **Scenario B — single hot flow, RSS knob.**  One multi-queue device
  whose flow population hides one elephant (75% of packets); the
  default identity indirection table lands it on a queue shared with
  mice, and that queue's backlog dominates p99.  The reactive policies
  must spot the hot-queue pathology from per-queue window counts and
  rewrite the indirection table to isolate the elephant, approaching
  the hand-tuned isolation table.

**The bar** (for both scenarios): the threshold policy recovers at
least half of the victim-p99 gap between the untuned-static and
hand-tuned-static runs — closed-loop control does most of the
operator's job.  The AIMD policy must at least improve on untuned.
"""

from __future__ import annotations

import numpy as np

from ..bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
)
from ..control import steering_table_length
from ..sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
)
from ..sim.rng import DEFAULT_SEED
from ..workloads import SingleHotFlow, build_workload, rss_buckets
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-13-control"
TITLE = (
    "Closed-loop QoS control: reactive policies recover the hand-tuned "
    "victim tail without workload foreknowledge"
)

#: Shared host profile (scenario A needs the IOMMU on, like figure 10).
SYSTEM = "NFP6000-HSW"
#: Reactive policies under test (static is the untuned baseline).
REACTIVE_POLICIES = ("threshold", "aimd")
#: Scenario A: mis-tuned wrr weights (victim, aggressor) — the operator
#: tuned for a workload where the *other* device was latency-sensitive.
UNTUNED_WEIGHTS = (1.0, 16.0)
#: Scenario A: hand-tuned weights, the figure-10 cure.
HANDTUNED_WEIGHTS = (8.0, 1.0)
#: Scenario A control window: ~25 windows over the victim's run.
WINDOW_A_NS = 50_000.0
#: Scenario B: one elephant flow carrying 75% of packets among 64 flows.
HOT_FLOWS = 64
HOT_FRACTION = 0.75
#: Scenario B: 512 B fixed frames at 42 Gb/s — past the single-queue
#: knee (so the elephant's queue saturates) but below the shared-device
#: limit (so a balanced table drains comfortably).
HOT_SIZE = 512
HOT_LOAD_GBPS = 42.0
HOT_QUEUES = 2
HOT_RING_DEPTH = 32
#: Scenario B control window: shorter run, tighter loop.
WINDOW_B_NS = 20_000.0
#: Recovery floor: reactive policies must close >= 50% of the
#: untuned-to-hand-tuned victim-p99 gap.
RECOVERY_FLOOR = 0.5


def _params_a(
    quick: bool,
    *,
    weights: tuple[float, float],
    controller: str = "static",
) -> ContentionParams:
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=600 if quick else 1200,
        aggressor_packets=5000 if quick else 10000,
    )
    return ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system=SYSTEM,
        iommu_enabled=True,
        arbiter="wrr",
        weights=weights,
        controller=controller,
        control_window_ns=WINDOW_A_NS if controller != "static" else None,
    )


def handtuned_hot_table(num_queues: int, *, seed: int) -> tuple[int, ...]:
    """The operator's isolation table for the single-elephant workload.

    Pins the elephant's indirection bucket to its own queue and
    round-robins every other bucket over the remaining queues — the
    standard "give the heavy hitter a dedicated queue" mitigation.
    """
    length = steering_table_length(num_queues)
    elephant_bucket = int(
        rss_buckets(np.asarray([0]), length, seed=seed)[0]
    )
    hot_queue = elephant_bucket % num_queues
    cool = [queue for queue in range(num_queues) if queue != hot_queue]
    table = []
    spin = 0
    for bucket in range(length):
        if bucket == elephant_bucket:
            table.append(hot_queue)
        else:
            table.append(cool[spin % len(cool)])
            spin += 1
    return tuple(table)


def _device_b(
    quick: bool, *, rss_table: tuple[int, ...] | None = None
) -> FabricDevice:
    workload = build_workload(
        "fixed", size=HOT_SIZE, load_gbps=HOT_LOAD_GBPS
    ).with_(flows=SingleHotFlow(flows=HOT_FLOWS, hot_fraction=HOT_FRACTION))
    return FabricDevice(
        workload=workload,
        model="dpdk",
        packets=3000 if quick else 6000,
        ring_depth=HOT_RING_DEPTH,
        num_queues=HOT_QUEUES,
        rss_table=rss_table,
    )


def _run_b(
    quick: bool,
    *,
    rss_table: tuple[int, ...] | None = None,
    controller: str = "static",
) -> ContentionResult:
    fabric = FabricConfig(
        system=SYSTEM,
        controller=controller,
        control_window_ns=WINDOW_B_NS if controller != "static" else None,
    )
    simulator = FabricSimulator(
        [_device_b(quick, rss_table=rss_table)], fabric
    )
    return simulator.run()


def _victim_p99(result: ContentionResult, name: str) -> float:
    device = result.device(name).result
    assert device.tx.latency is not None
    return device.tx.latency.p99


def _recovery(untuned: float, handtuned: float, reactive: float) -> float:
    """Fraction of the untuned-to-hand-tuned p99 gap the policy closed."""
    gap = untuned - handtuned
    if gap <= 0:
        return 0.0
    return (untuned - reactive) / gap


def run(quick: bool = True) -> ExperimentResult:
    """Run both pathologies under static/threshold/aimd; check recovery."""
    # Scenario A: mis-tuned vs hand-tuned weights, then the reactive
    # policies starting from the mis-tuned weights.
    a_untuned = run_contention_benchmark(
        _params_a(quick, weights=UNTUNED_WEIGHTS)
    )
    a_handtuned = run_contention_benchmark(
        _params_a(quick, weights=HANDTUNED_WEIGHTS)
    )
    a_reactive = {
        policy: run_contention_benchmark(
            _params_a(quick, weights=UNTUNED_WEIGHTS, controller=policy)
        )
        for policy in REACTIVE_POLICIES
    }
    a_p99 = {
        "untuned": _victim_p99(a_untuned, "victim"),
        "handtuned": _victim_p99(a_handtuned, "victim"),
        **{
            policy: _victim_p99(result, "victim")
            for policy, result in a_reactive.items()
        },
    }

    # Scenario B: identity vs isolation indirection table, then the
    # reactive policies starting from the identity table.
    hot_table = handtuned_hot_table(HOT_QUEUES, seed=DEFAULT_SEED)
    b_untuned = _run_b(quick)
    b_handtuned = _run_b(quick, rss_table=hot_table)
    b_reactive = {
        policy: _run_b(quick, controller=policy)
        for policy in REACTIVE_POLICIES
    }
    name_b = b_untuned.devices[0].name
    b_p99 = {
        "untuned": _victim_p99(b_untuned, name_b),
        "handtuned": _victim_p99(b_handtuned, name_b),
        **{
            policy: _victim_p99(result, name_b)
            for policy, result in b_reactive.items()
        },
    }

    recovery = {
        ("A", policy): _recovery(
            a_p99["untuned"], a_p99["handtuned"], a_p99[policy]
        )
        for policy in REACTIVE_POLICIES
    }
    recovery.update(
        {
            ("B", policy): _recovery(
                b_p99["untuned"], b_p99["handtuned"], b_p99[policy]
            )
            for policy in REACTIVE_POLICIES
        }
    )

    checks = [
        Check(
            "Scenario A has a gap worth closing: mis-tuned wrr weights "
            "(1:16) at least double the victim's TX p99 vs hand-tuned (8:1)",
            a_p99["untuned"] >= 2.0 * a_p99["handtuned"],
            f"p99 {a_p99['untuned']:.0f} ns mis-tuned vs "
            f"{a_p99['handtuned']:.0f} ns hand-tuned",
        ),
        Check(
            "Scenario B has a gap worth closing: the identity indirection "
            "table costs the hot-flow device >= 1.5x the isolation table's p99",
            b_p99["untuned"] >= 1.5 * b_p99["handtuned"],
            f"p99 {b_p99['untuned']:.0f} ns identity vs "
            f"{b_p99['handtuned']:.0f} ns isolated",
        ),
        Check(
            "Threshold control recovers >= 50% of the victim-p99 gap in "
            "scenario A (weights knob, no workload foreknowledge)",
            recovery[("A", "threshold")] >= RECOVERY_FLOOR,
            f"recovered {recovery[('A', 'threshold')] * 100:.0f}% "
            f"(p99 {a_p99['threshold']:.0f} ns)",
        ),
        Check(
            "Threshold control recovers >= 50% of the victim-p99 gap in "
            "scenario B (RSS knob, hot flow never named)",
            recovery[("B", "threshold")] >= RECOVERY_FLOOR,
            f"recovered {recovery[('B', 'threshold')] * 100:.0f}% "
            f"(p99 {b_p99['threshold']:.0f} ns)",
        ),
        Check(
            "AIMD control improves on untuned in both scenarios "
            "(gentler ramp, same direction)",
            a_p99["aimd"] < a_p99["untuned"]
            and b_p99["aimd"] < b_p99["untuned"],
            f"A: {a_p99['untuned']:.0f} -> {a_p99['aimd']:.0f} ns "
            f"({recovery[('A', 'aimd')] * 100:.0f}%), "
            f"B: {b_p99['untuned']:.0f} -> {b_p99['aimd']:.0f} ns "
            f"({recovery[('B', 'aimd')] * 100:.0f}%)",
        ),
        Check(
            "The reactive runs actually actuated: every threshold/aimd "
            "run carries a non-empty control-action log",
            all(
                len(result.control_actions) > 0
                for result in (*a_reactive.values(), *b_reactive.values())
            ),
            ", ".join(
                f"{scenario}/{policy}: {len(result.control_actions)}"
                for scenario, runs in (("A", a_reactive), ("B", b_reactive))
                for policy, result in runs.items()
            ),
        ),
        Check(
            "The untuned baselines never actuated: static runs carry no "
            "controller state at all",
            all(
                result.controller == "static" and not result.control_actions
                for result in (a_untuned, a_handtuned, b_untuned, b_handtuned)
            ),
            "4/4 static runs clean",
        ),
    ]

    table_rows = []
    for scenario, p99s in (("A: aggressor", a_p99), ("B: hot flow", b_p99)):
        for config in ("untuned", "handtuned", *REACTIVE_POLICIES):
            key = (scenario[0], config)
            table_rows.append(
                [
                    f"{scenario}, {config}",
                    p99s[config],
                    f"{recovery[key] * 100:.0f}%" if key in recovery else "-",
                ]
            )

    actions_note = ", ".join(
        f"{scenario}/{policy}: {len(result.control_actions)} action(s)"
        for scenario, runs in (("A", a_reactive), ("B", b_reactive))
        for policy, result in runs.items()
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=["scenario, config", "victim TX p99 (ns)", "gap recovered"],
        table_rows=table_rows,
        checks=checks,
        notes=[
            "recovery = (p99_untuned - p99_reactive) / "
            "(p99_untuned - p99_handtuned)",
            f"control windows: A {WINDOW_A_NS / 1000:g} us, "
            f"B {WINDOW_B_NS / 1000:g} us",
            f"actions: {actions_note}",
        ],
    )
