"""Registry of all reproduced figures and tables.

Maps experiment identifiers (``"figure-1"`` .. ``"table-2"``) to the driver
modules, so the CLI, the benchmark harness and the report generator can
enumerate and run every experiment uniformly.
"""

from __future__ import annotations

from types import ModuleType
from typing import Callable

from ..errors import ValidationError
from .base import ExperimentResult
from . import (
    fig1_sim,
    fig1_throughput_models,
    fig2_exanic_latency,
    fig4_baseline_bandwidth,
    fig5_baseline_latency,
    fig6_latency_distribution,
    fig7_9_sim,
    fig7_cache_ddio,
    fig8_knee,
    fig8_numa,
    fig8_sim,
    fig9_iommu,
    fig10_contention,
    fig11_topology,
    fig12_fleet,
    fig13_control,
    fig14_attribution,
    table1_systems,
    table2_findings,
)

#: Experiment drivers in paper order.  Figure 3 is the methodology diagram
#: (host-buffer layout); it has no data and is covered by the unit tests of
#: :mod:`repro.sim.hostbuffer` instead of an experiment driver.
_MODULES: tuple[ModuleType, ...] = (
    fig1_throughput_models,
    fig1_sim,
    fig2_exanic_latency,
    fig4_baseline_bandwidth,
    fig5_baseline_latency,
    fig6_latency_distribution,
    fig7_cache_ddio,
    fig8_numa,
    fig9_iommu,
    fig7_9_sim,
    fig8_sim,
    fig8_knee,
    fig10_contention,
    fig11_topology,
    fig12_fleet,
    fig13_control,
    fig14_attribution,
    table1_systems,
    table2_findings,
)

EXPERIMENTS: dict[str, ModuleType] = {
    module.EXPERIMENT_ID: module for module in _MODULES
}


def experiment_ids() -> list[str]:
    """All experiment identifiers in paper order."""
    return list(EXPERIMENTS)


def get_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable for an experiment id."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key].run


def run_experiment(experiment_id: str, *, quick: bool = True) -> ExperimentResult:
    """Run one experiment by id."""
    return get_runner(experiment_id)(quick=quick)


def run_all(*, quick: bool = True) -> list[ExperimentResult]:
    """Run every registered experiment in paper order."""
    return [module.run(quick=quick) for module in _MODULES]
