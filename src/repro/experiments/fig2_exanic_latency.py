"""Figure 2: NIC loopback latency and the PCIe contribution (ExaNIC).

The paper's motivating latency measurement: a loopback test on an ExaNIC
shows total NIC latency growing from under a microsecond to ~2.4 us over the
frame-size range, with PCIe responsible for 77-90+ % of it.  Here the ExaNIC
is a calibrated model (see :class:`repro.sim.devices.ExaNicModel`).

Paper claims checked:

* a 128 B round trip costs about 1 us, with PCIe contributing around 0.9 us;
* the PCIe share falls from >90 % for tiny frames to ~77 % at 1500 B but
  always dominates;
* the measured latencies imply ~30 in-flight DMAs to sustain 40G line rate
  at 128 B.
"""

from __future__ import annotations

import math

from ..core.ethernet import ETHERNET_40G
from ..sim.devices import EXANIC
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-2"
TITLE = "NIC loopback latency and PCIe contribution (ExaNIC model)"

#: Transfer sizes plotted in the figure (0 is approximated with a header-only
#: 16 B transfer).
TRANSFER_SIZES = (16, 64, 128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1500)


def run(quick: bool = True) -> ExperimentResult:
    """Generate the Figure 2 curves and check their qualitative shape."""
    total = [(size, EXANIC.total_latency_ns(size)) for size in TRANSFER_SIZES]
    pcie = [(size, EXANIC.pcie_latency_ns(size)) for size in TRANSFER_SIZES]
    series = {"NIC": total, "PCIe contribution": pcie}

    total_128 = value_at(total, 128)
    pcie_128 = value_at(pcie, 128)
    fraction_small = EXANIC.pcie_fraction(64)
    fraction_large = EXANIC.pcie_fraction(1500)
    inter_packet = ETHERNET_40G.inter_packet_time_ns(128)
    inflight = math.ceil(pcie_128 / inter_packet)

    checks = [
        Check(
            "128 B round trip is about 1 us with PCIe contributing about 0.9 us",
            900.0 <= total_128 <= 1200.0 and 800.0 <= pcie_128 <= 1000.0,
            f"total {total_128:.0f} ns, PCIe {pcie_128:.0f} ns",
        ),
        Check(
            "PCIe dominates the loopback latency (77-91% across sizes)",
            0.72 <= fraction_large <= 0.95 and fraction_small >= fraction_large,
            f"PCIe share {fraction_small:.1%} at 64 B, {fraction_large:.1%} at 1500 B",
        ),
        Check(
            "Latency implies roughly 30 concurrent DMAs for 40G line rate at 128 B",
            25 <= inflight <= 40,
            f"{pcie_128:.0f} ns / {inter_packet:.1f} ns per packet = {inflight} DMAs",
        ),
        Check(
            "Latency grows monotonically with transfer size",
            all(b >= a for (_, a), (_, b) in zip(total, total[1:])),
            "NIC latency curve is non-decreasing",
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Transfer size (B)",
        y_label="Median latency (ns)",
        checks=checks,
        notes=[
            "The ExaNIC is modelled (no hardware): both components are affine in "
            "the transfer size, calibrated to the paper's quoted 128 B and 1500 B "
            "numbers (DESIGN.md, substitution table)."
        ],
    )
