"""Figure 8: NUMA impact on DMA read bandwidth (NFP6000-BDW).

On a two-socket system the benchmark buffer is allocated either on the node
the NIC is attached to (local) or on the other node (remote), with a warm
cache.  The paper reports the percentage change of remote versus local DMA
read bandwidth across window sizes for 64-512 B transfers.

Paper claims checked:

* 64 B reads lose roughly 10-25 % when the buffer is remote;
* the penalty shrinks as the transfer size grows;
* 512 B reads see essentially no penalty;
* remote accesses add a roughly constant latency of about 100 ns.
"""

from __future__ import annotations

from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-8"
TITLE = "Local vs remote DMA read bandwidth, warm cache (NFP6000-BDW)"

SYSTEM = "NFP6000-BDW"
TRANSFER_SIZES = (64, 128, 256, 512)
WINDOWS = tuple(4 * KIB * (4**i) for i in range(8))


def run(quick: bool = True) -> ExperimentResult:
    """Measure the local/remote bandwidth change across windows and sizes."""
    transactions = 1200 if quick else 6000
    runner = BenchmarkRunner()
    series: dict[str, list[tuple[float, float]]] = {}
    latencies: dict[str, float] = {}

    for size in TRANSFER_SIZES:
        points = []
        for window in WINDOWS:
            bandwidths = {}
            for placement in ("local", "remote"):
                params = BenchmarkParams(
                    kind=BenchmarkKind.BW_RD,
                    transfer_size=size,
                    window_size=window,
                    cache_state="host_warm",
                    placement=placement,
                    system=SYSTEM,
                    transactions=transactions,
                )
                bandwidths[placement] = runner.run(params).bandwidth_gbps or 0.0
            change = 100.0 * (bandwidths["remote"] - bandwidths["local"]) / bandwidths["local"]
            points.append((window, change))
        series[f"{size}B BW_RD"] = points

    # Latency adder check: median LAT_RD local vs remote at 64 B.
    for placement in ("local", "remote"):
        params = BenchmarkParams(
            kind=BenchmarkKind.LAT_RD,
            transfer_size=64,
            window_size=8 * KIB,
            cache_state="host_warm",
            placement=placement,
            system=SYSTEM,
            transactions=1500 if quick else 10000,
        )
        latencies[placement] = runner.run(params).latency.median

    small_window = WINDOWS[1]
    checks = [
        Check(
            "64 B remote reads lose roughly 10-25% of their throughput",
            -30.0 <= value_at(series["64B BW_RD"], small_window) <= -8.0,
            f"64 B change at 16 KiB window = "
            f"{value_at(series['64B BW_RD'], small_window):.1f}%",
        ),
        Check(
            "The remote penalty shrinks as the transfer size grows",
            value_at(series["64B BW_RD"], small_window)
            < value_at(series["256B BW_RD"], small_window) + 1.0,
            f"64 B {value_at(series['64B BW_RD'], small_window):.1f}% vs "
            f"256 B {value_at(series['256B BW_RD'], small_window):.1f}%",
        ),
        Check(
            "512 B reads see essentially no remote penalty",
            all(change >= -3.0 for _, change in series["512B BW_RD"]),
            "512 B change within 3% at every window",
        ),
        Check(
            "Remote access adds roughly 100 ns of latency",
            50.0 <= latencies["remote"] - latencies["local"] <= 160.0,
            f"median 64 B LAT_RD: local {latencies['local']:.0f} ns, "
            f"remote {latencies['remote']:.0f} ns",
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Window size (B)",
        y_label="Bandwidth change vs local (%)",
        checks=checks,
        notes=[f"{transactions} DMAs per point; cache warmed on the buffer's node."],
    )
