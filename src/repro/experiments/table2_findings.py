"""Table 2: notable findings and evaluation-directed recommendations.

Table 2 condenses the paper's experimental findings into four rows (IOMMU,
DDIO, NUMA small transfers, NUMA large transfers) with a recommendation
each.  This experiment re-derives each observation from fresh benchmark runs
so the table is backed by measurements rather than copied text.
"""

from __future__ import annotations

from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB, MIB
from .base import Check, ExperimentResult

EXPERIMENT_ID = "table-2"
TITLE = "Notable findings derived experimentally (Table 2)"

SYSTEM_NUMA = "NFP6000-BDW"
SYSTEM_CACHE = "NFP6000-SNB"


def run(quick: bool = True) -> ExperimentResult:
    """Re-derive each Table 2 observation from the micro-benchmarks."""
    transactions = 1500 if quick else 8000
    latency_samples = 1500 if quick else 10000
    runner = BenchmarkRunner()

    # IOMMU row: throughput drop for a large working set.
    iommu_drop = _bandwidth_change(
        runner,
        BenchmarkParams(
            kind=BenchmarkKind.BW_RD,
            transfer_size=64,
            window_size=64 * MIB,
            cache_state="host_warm",
            system=SYSTEM_NUMA,
            transactions=transactions,
        ),
        toggle="iommu",
    )

    # DDIO row: small transactions faster when cache resident.
    warm = runner.run(
        BenchmarkParams(
            kind=BenchmarkKind.LAT_RD,
            transfer_size=64,
            window_size=8 * KIB,
            cache_state="host_warm",
            system=SYSTEM_CACHE,
            transactions=latency_samples,
        )
    ).latency.median
    cold = runner.run(
        BenchmarkParams(
            kind=BenchmarkKind.LAT_RD,
            transfer_size=64,
            window_size=8 * KIB,
            cache_state="cold",
            system=SYSTEM_CACHE,
            transactions=latency_samples,
        )
    ).latency.median
    ddio_benefit = cold - warm

    # NUMA rows: small transfers remote vs local, and large transfers.
    numa_small = _bandwidth_change(
        runner,
        BenchmarkParams(
            kind=BenchmarkKind.BW_RD,
            transfer_size=64,
            window_size=16 * KIB,
            cache_state="host_warm",
            system=SYSTEM_NUMA,
            transactions=transactions,
        ),
        toggle="numa",
    )
    numa_large = _bandwidth_change(
        runner,
        BenchmarkParams(
            kind=BenchmarkKind.BW_RD,
            transfer_size=512,
            window_size=16 * KIB,
            cache_state="host_warm",
            system=SYSTEM_NUMA,
            transactions=transactions,
        ),
        toggle="numa",
    )

    headers = ["Area", "Observation (measured here)", "Recommendation (paper)"]
    rows = [
        [
            "IOMMU (Fig 9)",
            f"64B read bandwidth changes by {iommu_drop:.0f}% once the working set "
            "exceeds the IOTLB reach",
            "Co-locate I/O buffers into super-pages",
        ],
        [
            "DDIO (Fig 7)",
            f"64B reads are {ddio_benefit:.0f} ns faster when the data is cache resident",
            "DDIO helps descriptor rings and small-packet receive",
        ],
        [
            "NUMA, small transfers (Fig 8)",
            f"64B remote reads change by {numa_small:.0f}% versus local",
            "Place descriptor rings on the device's local node",
        ],
        [
            "NUMA, large transfers (Fig 8)",
            f"512B remote reads change by {numa_large:.0f}% versus local",
            "Place packet buffers on the node where processing happens",
        ],
    ]

    checks = [
        Check(
            "IOMMU: significant throughput drop as the working set grows",
            iommu_drop <= -40.0,
            f"measured change {iommu_drop:.0f}%",
        ),
        Check(
            "DDIO: small transactions are faster when data is cache resident",
            30.0 <= ddio_benefit <= 120.0,
            f"warm cache saves {ddio_benefit:.0f} ns on a 64 B read",
        ),
        Check(
            "NUMA: small DMA reads from remote memory are markedly more expensive",
            numa_small <= -8.0,
            f"measured change {numa_small:.0f}%",
        ),
        Check(
            "NUMA: large transfers see no significant remote penalty",
            numa_large >= -5.0,
            f"measured change {numa_large:.0f}%",
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=headers,
        table_rows=rows,
        checks=checks,
        notes=["Each observation is re-measured; recommendations quote Table 2."],
    )


def _bandwidth_change(
    runner: BenchmarkRunner, base: BenchmarkParams, *, toggle: str
) -> float:
    """Percentage change of bandwidth when toggling IOMMU or NUMA placement."""
    if toggle == "iommu":
        baseline = runner.run(base.with_(iommu_enabled=False)).bandwidth_gbps or 0.0
        changed = runner.run(base.with_(iommu_enabled=True)).bandwidth_gbps or 0.0
    elif toggle == "numa":
        baseline = runner.run(base.with_(placement="local")).bandwidth_gbps or 0.0
        changed = runner.run(base.with_(placement="remote")).bandwidth_gbps or 0.0
    else:
        raise ValueError(f"unknown toggle {toggle!r}")
    return 100.0 * (changed - baseline) / baseline
