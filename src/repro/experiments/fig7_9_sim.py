"""Figures 7-9 (simulated): host effects on a live NIC datapath.

The paper measures cache/DDIO (Figure 7), NUMA (Figure 8) and IOMMU
(Figure 9) effects with raw pcie-bench DMA loops.  This experiment revisits
the same cliffs *under real traffic*: the packet-level NIC datapath
simulator (:mod:`repro.sim.nicsim`) coupled to a Table 1 host model
(:mod:`repro.sim.nichost`) and driven with IMIX and bursty workloads, so
every descriptor fetch, payload DMA and write-back is serviced by the
root complex rather than a flat link cost.

Claims checked:

* **Contract.** The host-decoupled datapath and a *neutral* host coupling
  (IOMMU off, warm cache, local buffers, small window) both stay within
  10% of the closed-form :meth:`~repro.core.nic.NicModel.throughput_gbps`
  — host coupling must not distort the regime the analytic model covers.
* **Cache (Fig 7).** With device-warm preparation, growing the payload
  window beyond the DDIO slice adds a DRAM-miss penalty to payload
  fetches that a small window does not see.
* **IOMMU (Fig 9).** With 4 KiB mappings, windows beyond the IOTLB reach
  (256 KiB) add roughly a page-walk latency to the packet path and — at
  saturating small-packet load — collapse throughput via page-walker
  serialisation; within the reach there is no measurable effect, and
  2 MiB super-pages remove the cliff entirely.
* **NUMA (Fig 8).** Remote payload buffers add roughly the interconnect
  penalty (~100 ns) to packet latency under smooth and IMIX traffic.

None of these knobs exists in the decoupled datapath — the same IMIX run
without a host model shows none of the cliffs, which is the point of the
host-coupling refactor.
"""

from __future__ import annotations

from ..sim.nichost import NicHostConfig
from ..sim.nicsim import NicSimResult, cross_validate, simulate_nic
from ..units import KIB, MIB
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-7-9-sim"
TITLE = (
    "Host-coupled NIC datapath: cache, NUMA and IOMMU cliffs under real "
    "traffic (Figures 7-9 revisited)"
)

#: Two-socket Broadwell host: the only profile that can show all three
#: effects (25 MiB LLC, dual socket, IOMMU calibrations from §6.5).
SYSTEM = "NFP6000-BDW"
#: Offered load (Gb/s per direction) for the latency scenarios, comfortably
#: below capacity so measured shifts are host effects, not queueing.
SCENARIO_LOAD_GBPS = 24.0
#: IOTLB reach with 4 KiB pages and 64 entries (§6.5).
IOTLB_REACH = 256 * KIB
#: Payload windows swept (the x axis of the window series).
WINDOWS = (64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)
#: Cross-validation tolerance (the PR 1 contract, kept through the refactor).
TOLERANCE = 0.10

#: Neutral coupling: everything a host can do to stay out of the way.
NEUTRAL_HOST = NicHostConfig(
    system=SYSTEM,
    iommu_enabled=False,
    payload_window=256 * KIB,
    payload_cache_state="host_warm",
    payload_placement="local",
)


def _coupled(
    window: int,
    *,
    iommu: bool = False,
    page_size: int = 4 * KIB,
    cache: str = "device_warm",
    placement: str = "local",
) -> NicHostConfig:
    return NicHostConfig(
        system=SYSTEM,
        iommu_enabled=iommu,
        iommu_page_size=page_size,
        payload_window=window,
        payload_cache_state=cache,
        payload_placement=placement,
    )


def _tx_p50(result: NicSimResult) -> float:
    assert result.tx.latency is not None
    return result.tx.latency.median


def run(quick: bool = True) -> ExperimentResult:
    """Sweep window/IOMMU/NUMA on the host-coupled datapath."""
    packets = 1200 if quick else 5000
    xval_packets = 1500 if quick else 4000

    # -- contract: decoupled and neutral-coupled agree with the closed form
    decoupled_points = cross_validate("dpdk", (64, 1500), packets=xval_packets)
    coupled_points = cross_validate(
        "dpdk", (64, 1500), packets=xval_packets, host=NEUTRAL_HOST
    )
    worst_decoupled = max(p.relative_error for p in decoupled_points)
    worst_coupled = max(p.relative_error for p in coupled_points)

    # -- window sweep under IMIX: cache pressure, then the IOTLB cliff
    series: dict[str, list[tuple[float, float]]] = {
        "IOMMU off": [],
        "IOMMU on (4K pages)": [],
        "IOMMU on (2M pages)": [],
    }
    sweep: dict[tuple[str, int], NicSimResult] = {}
    for window in WINDOWS:
        variants = {
            "IOMMU off": _coupled(window),
            "IOMMU on (4K pages)": _coupled(window, iommu=True),
            "IOMMU on (2M pages)": _coupled(
                window, iommu=True, page_size=2 * MIB
            ),
        }
        for name, host in variants.items():
            result = simulate_nic(
                "dpdk",
                "imix",
                packets=packets,
                load_gbps=SCENARIO_LOAD_GBPS,
                host=host,
            )
            sweep[(name, window)] = result
            series[name].append((float(window), _tx_p50(result)))

    small, large = WINDOWS[0], WINDOWS[-1]
    off_small = _tx_p50(sweep[("IOMMU off", small)])
    off_large = _tx_p50(sweep[("IOMMU off", large)])
    on_small = _tx_p50(sweep[("IOMMU on (4K pages)", small)])
    on_large = _tx_p50(sweep[("IOMMU on (4K pages)", large)])
    sp_large = _tx_p50(sweep[("IOMMU on (2M pages)", large)])
    large_on = sweep[("IOMMU on (4K pages)", large)]
    assert large_on.host is not None

    # -- cache state: warm small window vs cold large window, smooth load
    # (fixed-size traffic exposes the DRAM penalty across the whole
    # latency distribution; IMIX medians are batch-fill dominated)
    cache_warm = simulate_nic(
        "dpdk",
        "fixed",
        packets=packets,
        packet_size=512,
        load_gbps=SCENARIO_LOAD_GBPS,
        host=_coupled(256 * KIB, cache="host_warm"),
    )
    cache_cold = simulate_nic(
        "dpdk",
        "fixed",
        packets=packets,
        packet_size=512,
        load_gbps=SCENARIO_LOAD_GBPS,
        host=_coupled(large, cache="cold"),
    )
    cache_adder = _tx_p50(cache_cold) - _tx_p50(cache_warm)

    # -- IOMMU throughput collapse: saturating small packets, large window
    sat_off = simulate_nic(
        "dpdk", "fixed", packets=packets, packet_size=64, host=_coupled(large)
    )
    sat_on = simulate_nic(
        "dpdk",
        "fixed",
        packets=packets,
        packet_size=64,
        host=_coupled(large, iommu=True),
    )

    # -- NUMA placement under smooth, IMIX and bursty traffic
    numa: dict[tuple[str, str], NicSimResult] = {}
    for workload in ("fixed", "imix", "bursty"):
        for placement in ("local", "remote"):
            numa[(workload, placement)] = simulate_nic(
                "dpdk",
                workload,
                packets=packets,
                packet_size=512,
                load_gbps=SCENARIO_LOAD_GBPS,
                host=_coupled(
                    1 * MIB, cache="host_warm", placement=placement
                ),
            )
    fixed_adder = _tx_p50(numa[("fixed", "remote")]) - _tx_p50(
        numa[("fixed", "local")]
    )
    imix_adder = (
        numa[("imix", "remote")].tx.latency.mean
        - numa[("imix", "local")].tx.latency.mean
    )
    bursty_mean_adder = (
        numa[("bursty", "remote")].tx.latency.mean
        - numa[("bursty", "local")].tx.latency.mean
    )

    checks = [
        Check(
            "Decoupled datapath stays within 10% of the analytic model "
            "(the PR 1 contract)",
            all(p.within(TOLERANCE) for p in decoupled_points),
            f"worst deviation {worst_decoupled * 100:.1f}%",
        ),
        Check(
            "Neutral host coupling (IOMMU off, warm cache, local) keeps "
            "the 10% agreement",
            all(p.within(TOLERANCE) for p in coupled_points),
            f"worst deviation {worst_coupled * 100:.1f}%",
        ),
        Check(
            "A cold payload window beyond the DDIO slice adds the "
            "DRAM-miss penalty (~70 ns) to packet latency (Figure 7 "
            "analogue)",
            40.0 <= cache_adder <= 150.0,
            f"fixed-size TX p50 {_tx_p50(cache_warm):.0f} ns warm/256 KiB "
            f"vs {_tx_p50(cache_cold):.0f} ns cold/16 MiB "
            f"(payload hit rate {cache_cold.host.payload_cache_hit_rate * 100:.0f}%)",
        ),
        Check(
            "The IOMMU costs nothing while the window fits the IOTLB "
            "reach (256 KiB)",
            abs(on_small - off_small) <= 80.0,
            f"TX p50 {off_small:.0f} ns off vs {on_small:.0f} ns on "
            "at a 64 KiB window",
        ),
        Check(
            "Past the IOTLB reach, 4 KiB mappings add roughly a page "
            "walk to the packet path (Figure 9 analogue)",
            on_large - off_large >= 150.0,
            f"TX p50 {off_large:.0f} ns off vs {on_large:.0f} ns on at a "
            f"16 MiB window (IOTLB hit rate "
            f"{large_on.host.iotlb_hit_rate * 100:.0f}%)",
        ),
        Check(
            "Page-walker serialisation collapses saturating 64 B "
            "throughput at large windows",
            sat_on.throughput_gbps <= 0.8 * sat_off.throughput_gbps,
            f"{sat_off.throughput_gbps:.1f} Gb/s without vs "
            f"{sat_on.throughput_gbps:.1f} Gb/s with the IOMMU",
        ),
        Check(
            "2 MiB super-pages remove the latency cliff (Table 2 "
            "recommendation)",
            abs(sp_large - off_large) <= 80.0,
            f"TX p50 {sp_large:.0f} ns with super-pages vs "
            f"{off_large:.0f} ns without the IOMMU at 16 MiB",
        ),
        Check(
            "Remote payload buffers add roughly the ~100 ns interconnect "
            "penalty under smooth traffic (Figure 8 analogue)",
            50.0 <= fixed_adder <= 200.0,
            f"fixed-size TX p50 rises by {fixed_adder:.0f} ns",
        ),
        Check(
            # The local/remote runs share one seed, so the shift is the
            # systematic +100 ns on every payload fetch, diluted by how
            # much of each packet's latency is batch-fill waiting; only
            # its sign and order of magnitude are stable across modes.
            "The NUMA adder survives IMIX and bursty traffic",
            imix_adder >= 10.0 and bursty_mean_adder > 0.0,
            f"IMIX mean +{imix_adder:.0f} ns, bursty mean "
            f"+{bursty_mean_adder:.0f} ns",
        ),
    ]

    table_rows = [
        [
            "64B fixed saturating, 16M window, IOMMU off",
            sat_off.throughput_gbps,
            float(_tx_p50(sat_off)),
            sat_off.host.iotlb_hit_rate if sat_off.host else 1.0,
            sat_off.host.walker_stall_ns_mean if sat_off.host else 0.0,
        ],
        [
            "64B fixed saturating, 16M window, IOMMU on",
            sat_on.throughput_gbps,
            float(_tx_p50(sat_on)),
            sat_on.host.iotlb_hit_rate if sat_on.host else 1.0,
            sat_on.host.walker_stall_ns_mean if sat_on.host else 0.0,
        ],
        *(
            [
                f"512B {workload} @ {SCENARIO_LOAD_GBPS:g} Gb/s, {placement}",
                result.throughput_gbps,
                float(_tx_p50(result)),
                result.host.iotlb_hit_rate if result.host else 1.0,
                result.host.walker_stall_ns_mean if result.host else 0.0,
            ]
            for (workload, placement), result in numa.items()
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Payload window (B)",
        y_label="IMIX TX p50 latency (ns)",
        table_headers=[
            "scenario",
            "throughput (Gb/s)",
            "TX p50 (ns)",
            "IOTLB hit rate",
            "walker stall (ns)",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            f"All host-coupled runs use the {SYSTEM} profile; the window "
            "sweep prepares payload buffers device-warm so the DDIO slice "
            "(10% of the 25 MiB LLC) is the relevant capacity.",
            "Latency is arrival-to-completion-report on the TX path, "
            "whose payload fetch is a DMA read and therefore exposes "
            "host latency directly; RX payload writes are posted.",
            "The decoupled datapath has no window/IOMMU/placement knobs "
            "at all — these cliffs are produced entirely by routing DMAs "
            "through repro.sim.root_complex.",
        ],
    )
