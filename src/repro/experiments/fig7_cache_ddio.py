"""Figure 7: caching and DDIO effects (NFP6000-SNB).

Latency (7a) and bandwidth (7b) as a function of the benchmark window size,
with cold versus warm caches.  The latency tests use the NFP's direct PCIe
command interface with 8 B transfers; the bandwidth tests use 64 B DMAs.

Paper claims checked:

* cold-cache read latency is flat across window sizes (always DRAM);
* warm-cache reads are ~70 ns faster while the window fits the LLC and lose
  that advantage once it does not;
* cold-cache write+read latency is low while the window fits the ~10 % DDIO
  slice of the LLC, then rises by ~70 ns (dirty write-backs);
* warm-cache write+read latency rises only once the window exceeds the LLC;
* 64 B read bandwidth benefits from a warm cache until the window exceeds
  the LLC; write bandwidth is insensitive to cache state.
"""

from __future__ import annotations

from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB, MIB, format_size
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-7"
TITLE = "Cache and DDIO effects on latency and bandwidth (NFP6000-SNB)"

SYSTEM = "NFP6000-SNB"
WINDOWS = tuple(4 * KIB * (4**i) for i in range(8))  # 4K .. 64M
LATENCY_TRANSFER = 8
BANDWIDTH_TRANSFER = 64
#: LLC of the SNB system and its DDIO slice (15 MiB / 10 %).
LLC_BYTES = 15 * MIB
DDIO_BYTES = int(LLC_BYTES * 0.10)


def run(quick: bool = True) -> ExperimentResult:
    """Run the window-size sweeps for latency (8 B) and bandwidth (64 B)."""
    latency_samples = 1500 if quick else 10000
    bandwidth_transactions = 1200 if quick else 6000
    runner = BenchmarkRunner()
    series: dict[str, list[tuple[float, float]]] = {}

    for state in ("cold", "host_warm"):
        label = "cold" if state == "cold" else "warm"
        for kind in (BenchmarkKind.LAT_RD, BenchmarkKind.LAT_WRRD):
            base = BenchmarkParams(
                kind=kind,
                transfer_size=LATENCY_TRANSFER,
                window_size=WINDOWS[0],
                cache_state=state,
                system=SYSTEM,
                use_command_interface=True,
                transactions=latency_samples,
            )
            results = runner.sweep_window_size(base, WINDOWS)
            series[f"8B {kind.value} ({label})"] = [
                (r.params.window_size, r.latency.median) for r in results
            ]
        for kind in (BenchmarkKind.BW_RD, BenchmarkKind.BW_WR):
            base = BenchmarkParams(
                kind=kind,
                transfer_size=BANDWIDTH_TRANSFER,
                window_size=WINDOWS[0],
                cache_state=state,
                system=SYSTEM,
                transactions=bandwidth_transactions,
            )
            results = runner.sweep_window_size(base, WINDOWS)
            series[f"64B {kind.value} ({label})"] = [
                (r.params.window_size, r.bandwidth_gbps or 0.0) for r in results
            ]

    checks = _build_checks(series)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Window size (B)",
        y_label="Median latency (ns) / Bandwidth (Gb/s)",
        checks=checks,
        notes=[
            "Latency series use the NFP PCIe command interface with 8 B transfers "
            "(sub-figure a); bandwidth series use 64 B DMAs (sub-figure b).",
            f"LLC {format_size(LLC_BYTES)} with a ~10% DDIO slice "
            f"({format_size(DDIO_BYTES)}).",
        ],
    )


def _build_checks(series: dict[str, list[tuple[float, float]]]) -> list[Check]:
    rd_cold = series["8B LAT_RD (cold)"]
    rd_warm = series["8B LAT_RD (warm)"]
    wrrd_cold = series["8B LAT_WRRD (cold)"]
    wrrd_warm = series["8B LAT_WRRD (warm)"]
    bw_rd_cold = series["64B BW_RD (cold)"]
    bw_rd_warm = series["64B BW_RD (warm)"]
    bw_wr_cold = series["64B BW_WR (cold)"]
    bw_wr_warm = series["64B BW_WR (warm)"]

    small, below_llc, above_llc = WINDOWS[0], WINDOWS[4], WINDOWS[-1]
    above_ddio = WINDOWS[5]  # 4 MiB, beyond the 1.5 MiB DDIO slice

    cold_values = [y for _, y in rd_cold]
    cold_flat = max(cold_values) - min(cold_values) <= 60.0
    warm_discount = value_at(rd_cold, small) - value_at(rd_warm, small)
    warm_lost = value_at(rd_warm, above_llc) >= value_at(rd_cold, above_llc) - 40.0
    ddio_step = value_at(wrrd_cold, above_ddio) - value_at(wrrd_cold, small)
    warm_wrrd_step = value_at(wrrd_warm, above_llc) - value_at(wrrd_warm, below_llc)
    warm_wrrd_flat_below = (
        abs(value_at(wrrd_warm, below_llc) - value_at(wrrd_warm, small)) <= 40.0
    )
    bw_warm_benefit = value_at(bw_rd_warm, small) - value_at(bw_rd_cold, small)
    bw_warm_converges = (
        abs(value_at(bw_rd_warm, above_llc) - value_at(bw_rd_cold, above_llc)) <= 2.0
    )
    bw_wr_insensitive = all(
        abs(value_at(bw_wr_warm, window) - value_at(bw_wr_cold, window)) <= 2.0
        for window, _ in bw_wr_cold
    )

    return [
        Check(
            "Cold-cache read latency is flat across window sizes",
            cold_flat,
            f"cold LAT_RD spans {min(cold_values):.0f}-{max(cold_values):.0f} ns",
        ),
        Check(
            "Warm-cache reads are ~70 ns faster while the window fits the LLC",
            40.0 <= warm_discount <= 110.0,
            f"discount at 4 KiB window = {warm_discount:.0f} ns",
        ),
        Check(
            "The warm-cache advantage disappears beyond the LLC size",
            warm_lost,
            f"64 MiB window: warm {value_at(rd_warm, above_llc):.0f} ns vs cold "
            f"{value_at(rd_cold, above_llc):.0f} ns",
        ),
        Check(
            "Cold LAT_WRRD rises by ~70 ns once the window exceeds the DDIO slice",
            40.0 <= ddio_step <= 120.0,
            f"step from 4 KiB to 4 MiB window = {ddio_step:.0f} ns",
        ),
        Check(
            "Warm LAT_WRRD stays low until the window exceeds the LLC",
            warm_wrrd_flat_below and 40.0 <= warm_wrrd_step <= 120.0,
            f"flat below LLC, then +{warm_wrrd_step:.0f} ns at 64 MiB",
        ),
        Check(
            "64 B read bandwidth benefits from a warm cache for small windows",
            bw_warm_benefit >= 1.0,
            f"warm-cold gap at 4 KiB window = {bw_warm_benefit:.1f} Gb/s",
        ),
        Check(
            "The read-bandwidth benefit disappears beyond the LLC",
            bw_warm_converges,
            f"64 MiB window: warm {value_at(bw_rd_warm, above_llc):.1f} vs cold "
            f"{value_at(bw_rd_cold, above_llc):.1f} Gb/s",
        ),
        Check(
            "Write bandwidth is insensitive to cache state and window size",
            bw_wr_insensitive,
            "BW_WR warm/cold differ by under 2 Gb/s at every window",
        ),
    ]
