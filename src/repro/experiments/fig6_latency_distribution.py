"""Figure 6: 64 B DMA-read latency distribution, Xeon E5 vs Xeon E3.

The paper contrasts the very tight latency distribution of a Haswell Xeon E5
(99.9 % of two million samples inside an 80 ns band, median 547 ns) with the
Xeon E3 of the same micro-architecture generation, whose median is more than
double, whose 99th percentile reaches several microseconds and which shows
occasional millisecond-scale stalls suspected to be power management.

Paper claims checked:

* the E5 band from minimum to the 99.9th percentile is narrow (order 100 ns);
* the E3 median is roughly double the E5 median (or worse);
* the E3 minimum is actually *lower* than the E5 minimum;
* the E3 99th percentile is several times its median and the maximum reaches
  the millisecond range.
"""

from __future__ import annotations

import numpy as np

from ..bench.latency import run_latency_benchmark
from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.stats import cdf, fraction_within
from ..units import KIB
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-6"
TITLE = "64B DMA read latency distribution: Xeon E5 (NFP6000-HSW) vs Xeon E3 (NFP6000-HSW-E3)"

SYSTEMS = ("NFP6000-HSW", "NFP6000-HSW-E3")


def run(quick: bool = True) -> ExperimentResult:
    """Collect the two latency distributions and compare their shapes."""
    samples = 20_000 if quick else 200_000
    results = {}
    raw = {}
    for system in SYSTEMS:
        params = BenchmarkParams(
            kind=BenchmarkKind.LAT_RD,
            transfer_size=64,
            window_size=8 * KIB,
            cache_state="host_warm",
            system=system,
            transactions=samples,
        )
        result = run_latency_benchmark(params, keep_samples=True)
        results[system] = result
        raw[system] = result.samples_ns

    series = {}
    for system in SYSTEMS:
        xs, ys = cdf(raw[system], points=120)
        series[system] = list(zip(xs.tolist(), ys.tolist()))

    e5 = results["NFP6000-HSW"].latency
    e3 = results["NFP6000-HSW-E3"].latency
    e5_band = float(np.percentile(raw["NFP6000-HSW"], 99.9)) - e5.minimum
    e5_within = fraction_within(raw["NFP6000-HSW"], e5.minimum, e5.minimum + 120.0)

    checks = [
        Check(
            "Xeon E5: 99.9% of samples fall in a narrow band above the minimum",
            e5_band <= 200.0 and e5_within >= 0.995,
            f"min-to-p99.9 band {e5_band:.0f} ns; "
            f"{e5_within:.1%} within 120 ns of the minimum",
        ),
        Check(
            "Xeon E3 median is at least ~2x the Xeon E5 median",
            e3.median >= 1.8 * e5.median,
            f"E3 median {e3.median:.0f} ns vs E5 median {e5.median:.0f} ns",
        ),
        Check(
            "Xeon E3 minimum latency is lower than the E5 minimum",
            e3.minimum < e5.minimum,
            f"E3 min {e3.minimum:.0f} ns vs E5 min {e5.minimum:.0f} ns",
        ),
        Check(
            "Xeon E3 tail is heavy: p99 is several times the median",
            e3.p99 >= 3.0 * e3.median,
            f"E3 p99 {e3.p99:.0f} ns vs median {e3.median:.0f} ns",
        ),
        Check(
            "Xeon E3 worst-case latencies reach the millisecond range",
            e3.maximum >= 5e5,
            f"E3 maximum {e3.maximum / 1e6:.2f} ms",
        ),
        Check(
            "Xeon E5 99th percentile stays close to its median",
            e5.p99 <= 1.2 * e5.median,
            f"E5 p99 {e5.p99:.0f} ns vs median {e5.median:.0f} ns",
        ),
    ]

    table_headers = ["system", "min", "median", "p90", "p99", "p99.9", "max"]
    table_rows = [
        [
            system,
            results[system].latency.minimum,
            results[system].latency.median,
            results[system].latency.p90,
            results[system].latency.p99,
            results[system].latency.p999,
            results[system].latency.maximum,
        ]
        for system in SYSTEMS
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Latency (ns)",
        y_label="CDF",
        table_headers=table_headers,
        table_rows=table_rows,
        checks=checks,
        notes=[
            f"{samples} samples per system (2 million in the paper); "
            "the E3 stall probability means the extreme tail needs the larger "
            "sample count of the non-quick mode to stabilise."
        ],
    )
