"""Figure 11 (new): what fabric *structure* buys a noisy-neighbour victim.

Figure 10 showed the shared-host noisy-neighbour effect and weighted
arbitration as a scheduling cure.  This experiment exercises the three
*structural* cures the topology-graph fabric adds, against the same
canonical victim/aggressor pair:

* **Placement.**  Behind a switch shared with the aggressor, the victim
  queues against the aggressor's whole per-port backlog (and pays the
  extra store-and-forward hop) — the degradation matches the flat fcfs
  collapse.  On its *own root port*, with the aggressor behind a
  credit-flow-controlled switch, at most one aggressor request is ever
  pending at the root: the victim's degradation all but vanishes even
  under fcfs, no weights needed.
* **DDIO way partitioning.**  In the shared-cache regime the aggressor's
  64 MiB window squeezes the victim's descriptor rings out of the LLC
  (ring hit rates collapse to the aggregate residency).  Giving each
  device its own capacity slice restores the victim's descriptor-ring
  hit rate to its solo value — cache isolation orthogonal to
  arbitration.
* **Grant slicing.**  Non-preemptive wrr still makes a victim request
  wait out a full in-flight bulk grant; the ``sliced`` scheme preempts
  grants at quantum boundaries, bounding the victim's added latency to
  about two quanta.  A controlled single-resource microbench pins the
  bound exactly; the full datapath shows the same ordering.

A depth-1 sanity check pins the compile contract: an *explicit* flat
topology spec reproduces the implicit flat fabric bit for bit.
"""

from __future__ import annotations

from ..bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
    solo_device_params,
)
from ..bench.nicsim import NicSimParams, run_nicsim_benchmark
from ..sim.engine import ArbitratedResource, EventLoop
from ..sim.fabric import ContentionResult
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-11-topology"
TITLE = (
    "Composable fabric topologies: switch placement, DDIO way "
    "partitioning and preemptive grant slicing as structural cures for "
    "the noisy neighbour"
)

#: Shared host; the IOMMU must be on so both devices share IOTLB + walker.
SYSTEM = "NFP6000-HSW"
#: Service quantum of the sliced-arbitration scenarios (ns).
QUANTUM_NS = 16.0
#: wrr/sliced weights: victim over aggressor.
WEIGHTS = (8.0, 1.0)
#: The victim+aggressor behind one shared switch (worst placement).
SHARED_SWITCH = "victim=sw0,aggressor=sw0,sw0=root"
#: The victim on its own root port, aggressor behind a switch.
OWN_PORT = "victim=root,aggressor=sw0,sw0=root"
#: Explicit spelling of the flat (depth-1) topology.
FLAT_SPEC = "victim=root,aggressor=root"
#: Descriptor-ring hit rates must return to within this of solo (b).
RING_HIT_TOLERANCE = 0.05


def _devices(quick: bool) -> tuple[NicSimParams, NicSimParams]:
    return noisy_neighbour_pair(
        victim_packets=600 if quick else 1200,
        aggressor_packets=5000 if quick else 10000,
    )


def _params(quick: bool, **changes: object) -> ContentionParams:
    victim, aggressor = _devices(quick)
    return ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system=SYSTEM,
        iommu_enabled=True,
        arbiter="fcfs",
    ).with_(**changes)


def _worst_victim_wait(scheme: str, quantum_ns: float | None) -> float:
    """Worst-case victim queueing delay on one saturated arbitrated port.

    A controlled microbench: a bulk aggressor keeps the resource 100%
    busy with long (100 ns) grants in a closed loop, while a sparse
    victim submits one short request at a time at awkward phases (just
    after a bulk grant started).  Returns the victim's ``wait_ns_max``:
    under non-preemptive schemes it approaches the full bulk service
    time, under ``sliced`` it is bounded by about two quanta.
    """
    loop = EventLoop()
    resource = ArbitratedResource(
        "fig11.microbench",
        2,
        schedule=loop.at,
        scheme=scheme,
        weights=WEIGHTS,
        quantum_ns=quantum_ns,
    )
    resource.attach_loop(loop)
    bulk_service = 100.0
    horizon = 20_000.0

    def bulk(start: float) -> None:
        completion = start + bulk_service
        if completion < horizon:
            loop.at(
                completion,
                lambda now: resource.request(1, now, bulk_service, bulk),
            )

    resource.request(1, 0.0, bulk_service, bulk)
    # One victim request at a time, each arriving 1 ns after a fresh bulk
    # grant would have started — the worst phase for a non-preemptive
    # scheme.
    for arrival in range(40):
        loop.at(
            float(arrival) * 500.0 + 1.0,
            lambda now: resource.request(0, now, 10.0, lambda start: None),
        )
    loop.run()
    return resource.stats[0].wait_ns_max


def _victim(result: ContentionResult):
    return result.device("victim")


def run(quick: bool = True) -> ExperimentResult:
    """Contend the pair across fabric shapes; check the structural cures."""
    base = _params(quick)

    solo_results = {
        name: run_nicsim_benchmark(solo_device_params(base, index))
        for index, name in enumerate(base.device_names())
    }
    solo_victim = solo_results["victim"]
    assert solo_victim.tx.latency is not None
    assert solo_victim.host is not None
    solo_p99 = solo_victim.tx.latency.p99
    solo_ring_hit = solo_victim.host.descriptor_cache_hit_rate

    scenarios: dict[str, ContentionParams] = {
        "flat fcfs (shared cache)": base,
        "shared switch": base.with_(topology=SHARED_SWITCH),
        "own root port": base.with_(topology=OWN_PORT),
        "flat fcfs + DDIO partition": base.with_(ddio_partition=(1.0, 1.0)),
        "flat wrr 8:1": base.with_(arbiter="wrr", weights=WEIGHTS),
        "flat sliced 8:1": base.with_(
            arbiter="sliced", weights=WEIGHTS, quantum_ns=QUANTUM_NS
        ),
    }
    contended = {
        label: run_contention_benchmark(params)
        for label, params in scenarios.items()
    }

    # Depth-1 contract: the explicit flat spec is the implicit flat run.
    explicit_flat = run_contention_benchmark(base.with_(topology=FLAT_SPEC))

    def p99_degradation(label: str) -> float:
        victim = _victim(contended[label]).result
        assert victim.tx.latency is not None
        return (victim.tx.latency.p99 - solo_p99) / solo_p99

    shared_switch_deg = p99_degradation("shared switch")
    own_port_deg = p99_degradation("own root port")

    def ring_hit(label: str) -> float:
        host = _victim(contended[label]).result.host
        assert host is not None
        return host.descriptor_cache_hit_rate

    shared_ring_hit = ring_hit("flat fcfs (shared cache)")
    partitioned_ring_hit = ring_hit("flat fcfs + DDIO partition")

    def worst_fabric_wait(label: str) -> float:
        victim = _victim(contended[label])
        assert victim.ingress is not None and victim.walker is not None
        return max(victim.ingress.wait_ns_max, victim.walker.wait_ns_max)

    wrr_wait = _worst_victim_wait("wrr", None)
    sliced_wait = _worst_victim_wait("sliced", QUANTUM_NS)

    checks = [
        Check(
            "Moving the victim behind its own root port (aggressor behind "
            "a credit-flow-controlled switch) removes at least half of the "
            "shared-switch p99 degradation, with no weighting at all",
            shared_switch_deg >= 0.10
            and own_port_deg <= shared_switch_deg / 2,
            f"p99 degradation vs solo: shared switch "
            f"{shared_switch_deg * 100:+.0f}%, own root port "
            f"{own_port_deg * 100:+.0f}%",
        ),
        Check(
            "DDIO way partitioning restores the victim's descriptor-ring "
            f"hit rate to within {RING_HIT_TOLERANCE * 100:.0f}% of solo",
            abs(partitioned_ring_hit - solo_ring_hit) <= RING_HIT_TOLERANCE,
            f"solo {solo_ring_hit:.3f} -> partitioned "
            f"{partitioned_ring_hit:.3f}",
        ),
        Check(
            "... while the shared-cache run does not: the aggregate "
            "payload pressure evicts the victim's rings",
            abs(shared_ring_hit - solo_ring_hit) > RING_HIT_TOLERANCE,
            f"solo {solo_ring_hit:.3f} -> shared {shared_ring_hit:.3f}",
        ),
        Check(
            "Grant slicing bounds the victim's added latency to <= 2 "
            "quanta under a saturating bulk aggressor (single-resource "
            "microbench), where non-preemptive wrr makes it wait out the "
            "full bulk grant",
            sliced_wait <= 2 * QUANTUM_NS < wrr_wait,
            f"worst victim wait: wrr {wrr_wait:.1f} ns, sliced "
            f"{sliced_wait:.1f} ns (quantum {QUANTUM_NS:g} ns)",
        ),
        Check(
            "The same ordering holds end to end: slicing lowers the "
            "victim's worst arbitration wait below non-preemptive wrr in "
            "the full datapath",
            worst_fabric_wait("flat sliced 8:1")
            < worst_fabric_wait("flat wrr 8:1"),
            f"worst fabric wait: wrr {worst_fabric_wait('flat wrr 8:1'):.1f} "
            f"ns, sliced {worst_fabric_wait('flat sliced 8:1'):.1f} ns",
        ),
        Check(
            "Depth-1 contract: an explicit flat topology spec reproduces "
            "the implicit flat fabric bit for bit",
            explicit_flat == contended["flat fcfs (shared cache)"],
            f"victim p99 {explicit_flat.device('victim').result.tx.latency.p99:.3f}"
            " ns in both",
        ),
    ]

    table_rows = []
    for label, result in contended.items():
        for device in result.devices:
            nic = device.result
            assert nic.tx.latency is not None
            assert nic.host is not None
            table_rows.append(
                [
                    f"{label}, {device.name}",
                    result.topology_depth,
                    nic.rx.throughput_gbps if nic.rx else nic.tx.throughput_gbps,
                    nic.tx.latency.p99,
                    nic.host.descriptor_cache_hit_rate,
                    device.walker.wait_ns_max if device.walker else 0.0,
                ]
            )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=[
            "scenario",
            "depth",
            "delivered (Gb/s)",
            "TX p99 (ns)",
            "ring hit rate",
            "max walker wait (ns)",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            "Same canonical victim/aggressor pair as figure-10 (DPDK "
            "512 B at 5 Gb/s, 12 tags, 256 KiB window vs saturating "
            "kernel IMIX over 64 MiB), shared host with the IOMMU on.",
            "Switch upstream links carry one credit: a request may only "
            "be pending at the parent once the previous one's root-level "
            "service completed.  That is why a switch in front of the "
            "aggressor isolates the victim even under fcfs — the backlog "
            "stays inside the aggressor's own switch.",
            "The slicing microbench drives one arbitrated port directly "
            "(bulk 100 ns grants in a closed loop, sparse 10 ns victim "
            "requests at worst-case phases), so the <= 2-quantum bound "
            "is asserted without datapath self-queueing noise.",
        ],
    )
