"""Figure 1: modelled bidirectional bandwidth of a PCIe Gen 3 x8 link.

The figure compares, over packet sizes, the effective PCIe bandwidth, the
40G Ethernet requirement, and the achievable throughput of three NIC/driver
interaction models (Simple NIC, Modern NIC with a kernel driver, Modern NIC
with a DPDK driver).  This experiment is purely analytical — it exercises
the Section 3 model, no simulation involved.

Paper claims checked:

* PCIe protocol overheads reduce the usable bandwidth to around 50 Gb/s.
* The Simple NIC only reaches 40G line rate for frames larger than ~512 B.
* Each optimisation step (kernel-driver batching, then DPDK polling) improves
  throughput, and both modern variants sustain line rate for much smaller
  frames than the simple design.
"""

from __future__ import annotations

from ..core.model import PCIeModel
from ..core.nic import MODERN_NIC_DPDK, MODERN_NIC_KERNEL, SIMPLE_NIC
from .base import Check, ExperimentResult, crossover_x, value_at

EXPERIMENT_ID = "figure-1"
TITLE = "Modelled bidirectional bandwidth, PCIe Gen3 x8 (Effective BW, Simple/Modern NIC)"

#: Packet sizes plotted (the paper's x axis runs to ~1280 B; we extend to the
#: largest standard frame).
PACKET_SIZES = tuple(range(64, 1537, 64))


def run(quick: bool = True) -> ExperimentResult:
    """Generate the Figure 1 curves and check their qualitative shape."""
    model = PCIeModel.gen3_x8()
    sizes = PACKET_SIZES
    curves = model.figure1_curves(sizes)

    effective = curves["Effective PCIe BW"]
    ethernet = curves["40G Ethernet"]
    simple = curves[SIMPLE_NIC.name]
    kernel = curves[MODERN_NIC_KERNEL.name]
    dpdk = curves[MODERN_NIC_DPDK.name]

    checks = []
    large_bw = value_at(effective, 1536)
    checks.append(
        Check(
            "PCIe protocol overheads leave roughly 50 Gb/s usable on Gen3 x8",
            45.0 <= large_bw <= 55.0,
            f"effective bidirectional BW at 1536 B = {large_bw:.1f} Gb/s",
        )
    )
    simple_crossover = crossover_x(simple, ethernet)
    checks.append(
        Check(
            "Simple NIC reaches 40G line rate only for frames larger than ~512 B",
            simple_crossover is not None and 448 <= simple_crossover <= 832,
            f"crossover at {simple_crossover} B",
        )
    )
    kernel_crossover = crossover_x(kernel, ethernet)
    dpdk_crossover = crossover_x(dpdk, ethernet)
    checks.append(
        Check(
            "Modern NIC models sustain line rate for much smaller frames",
            kernel_crossover is not None
            and dpdk_crossover is not None
            and kernel_crossover <= 256
            and dpdk_crossover <= kernel_crossover,
            f"kernel crossover {kernel_crossover} B, DPDK crossover {dpdk_crossover} B",
        )
    )
    ordering_holds = all(
        value_at(simple, size)
        <= value_at(kernel, size) + 1e-9
        <= value_at(dpdk, size) + 1e-9
        for size in sizes
    )
    checks.append(
        Check(
            "Each optimisation step improves achievable throughput",
            ordering_holds,
            "Simple <= kernel driver <= DPDK driver at every packet size",
        )
    )
    small_gap = value_at(effective, 64) < value_at(effective, 1024)
    checks.append(
        Check(
            "Per-TLP overheads penalise small transfers most (saw-tooth rises)",
            small_gap,
            f"64 B: {value_at(effective, 64):.1f} Gb/s vs 1024 B: "
            f"{value_at(effective, 1024):.1f} Gb/s",
        )
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=curves,
        x_label="Transfer size (B)",
        y_label="Bandwidth (Gb/s)",
        checks=checks,
        notes=[
            "Analytical model only (equations (1)-(3) plus the NIC interaction "
            "models); MPS=256B, MRRS=512B, 64-bit addressing."
        ],
    )
