"""Figure 14 (new): latency attribution from transaction-level traces.

The earlier figures measure *that* a shared host inflates the victim's
tail; the span tracer (:mod:`repro.obs.trace`) is the instrument that
says *where* the nanoseconds went.  This experiment pins the two
properties that make the attribution trustworthy:

* **Exactness.**  The four packet lifecycle stages (ring admission,
  descriptor issue, payload DMA, completion delivery) are contiguous by
  construction, so a traced packet's stage durations must sum to its
  end-to-end latency — not approximately, to floating-point identity.
  The per-lane mean of the span sums must likewise reproduce the
  simulator's own latency summary.
* **Attribution.**  Re-running the figure-10 noisy-neighbour pair with
  tracing on, the victim's arbitration-wait share must rise sharply
  against a solo run of the same device — contention *is* queueing for
  the root port — while the IOMMU walker's mean service time per walk
  stays invariant: the walker is a fixed-latency pipeline, and blaming
  it for the tail would be mis-attribution.

A final check loads the Chrome trace-event export and verifies the
schema Perfetto expects (``ph``/``ts``/``dur``/``pid``/``tid`` on every
duration event), so ``--trace-out`` artefacts actually open.
"""

from __future__ import annotations

import io
import json

from ..bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
)
from ..obs.trace import (
    ARB_PREFIX,
    PACKET_STAGES,
    STAGE_COMPLETION,
    STAGE_RING,
    STAGE_WALKER,
    Tracer,
)
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-14-attribution"
TITLE = (
    "Latency attribution: traced stage spans telescope to the end-to-end "
    "latency, and contention shows up as arbitration wait, not walker time"
)

#: Shared host profile (IOMMU on, so walker spans exist).
SYSTEM = "NFP6000-HSW"
#: Relative tolerance of the telescoping identity (pure float error).
SUM_RTOL = 1e-9
#: The victim's per-packet arbitration wait must at least double under
#: the aggressor.
ARB_RISE_FLOOR = 2.0
#: The walker's mean service time per walk may move at most this much.
WALKER_DRIFT = 0.10


def _params(quick: bool, *, contended: bool) -> ContentionParams:
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=600 if quick else 1200,
        aggressor_packets=3000 if quick else 10000,
    )
    devices = (victim, aggressor) if contended else (victim,)
    names = ("victim", "aggressor") if contended else ("victim",)
    return ContentionParams(
        devices=devices,
        names=names,
        system=SYSTEM,
        iommu_enabled=True,
    )


def _traced_run(params: ContentionParams) -> Tracer:
    tracer = Tracer(capacity=1 << 20)
    run_contention_benchmark(params, tracer=tracer)
    return tracer


def _packet_traces(
    tracer: Tracer, device: str
) -> dict[tuple[str, int], dict[str, tuple[float, float]]]:
    """Complete packet traces of one device: (lane, packet) -> stage spans."""
    grouped: dict[tuple[str, int], dict[str, tuple[float, float]]] = {}
    wanted = frozenset(PACKET_STAGES)
    for span in tracer.spans:
        if span.device == device and span.stage in wanted:
            grouped.setdefault((span.lane, span.packet), {})[span.stage] = (
                span.start_ns,
                span.duration_ns,
            )
    return {
        key: stages
        for key, stages in grouped.items()
        if len(stages) == len(PACKET_STAGES)
    }


def _telescoping_error(
    traces: dict[tuple[str, int], dict[str, tuple[float, float]]]
) -> float:
    """Worst relative gap between sum-of-stages and end-to-end latency."""
    worst = 0.0
    for stages in traces.values():
        total = sum(duration for _, duration in stages.values())
        ring_start = stages[STAGE_RING][0]
        completion_start, completion_duration = stages[STAGE_COMPLETION]
        end_to_end = (completion_start + completion_duration) - ring_start
        if end_to_end > 0.0:
            worst = max(worst, abs(total - end_to_end) / end_to_end)
        else:
            worst = max(worst, abs(total - end_to_end))
    return worst


def _arb_wait_per_packet(tracer: Tracer, device: str, packets: int) -> float:
    total = sum(
        span.duration_ns
        for span in tracer.spans
        if span.device == device and span.stage.startswith(ARB_PREFIX)
    )
    return total / packets if packets else 0.0


def _walker_mean(tracer: Tracer, device: str) -> float:
    walks = [
        span.duration_ns
        for span in tracer.spans
        if span.device == device and span.stage == STAGE_WALKER
    ]
    return sum(walks) / len(walks) if walks else 0.0


def _chrome_export_ok(tracer: Tracer) -> tuple[bool, str]:
    """Round-trip the Chrome export through JSON and check its schema."""
    stream = io.StringIO()
    tracer.dump(stream, fmt="chrome")
    document = json.loads(stream.getvalue())
    events = document.get("traceEvents", [])
    duration_events = [e for e in events if e.get("ph") == "X"]
    metadata = [e for e in events if e.get("ph") == "M"]
    required = ("name", "ph", "ts", "dur", "pid", "tid")
    missing = sum(
        1
        for event in duration_events
        if any(key not in event for key in required)
    )
    ok = bool(duration_events) and bool(metadata) and missing == 0
    return ok, (
        f"{len(duration_events)} duration events, {len(metadata)} metadata "
        f"events, {missing} missing required keys"
    )


def run(quick: bool = True) -> ExperimentResult:
    """Trace solo and contended runs; check exactness and attribution."""
    solo_params = _params(quick, contended=False)
    pair_params = _params(quick, contended=True)
    solo = _traced_run(solo_params)
    pair = _traced_run(pair_params)

    solo_traces = _packet_traces(solo, "victim")
    pair_traces = _packet_traces(pair, "victim")
    worst_error = max(
        _telescoping_error(solo_traces), _telescoping_error(pair_traces)
    )

    solo_arb = _arb_wait_per_packet(solo, "victim", len(solo_traces))
    pair_arb = _arb_wait_per_packet(pair, "victim", len(pair_traces))
    solo_walk = _walker_mean(solo, "victim")
    pair_walk = _walker_mean(pair, "victim")
    walker_drift = (
        abs(pair_walk - solo_walk) / solo_walk if solo_walk > 0.0 else 0.0
    )
    export_ok, export_note = _chrome_export_ok(pair)

    checks = [
        Check(
            "Traced packets are complete: both runs delivered packets and "
            "every delivered victim packet carries all four stage spans",
            len(solo_traces) > 0 and len(pair_traces) > 0,
            f"solo {len(solo_traces)}, contended {len(pair_traces)} "
            "complete packet traces",
        ),
        Check(
            "Telescoping identity: every traced packet's stage durations "
            "sum to its end-to-end latency (float error only)",
            worst_error <= SUM_RTOL,
            f"worst relative error {worst_error:.2e}",
        ),
        Check(
            "Contention is arbitration wait: the victim's per-packet arb "
            f"wait rises >= {ARB_RISE_FLOOR:g}x under the aggressor",
            pair_arb >= ARB_RISE_FLOOR * solo_arb and pair_arb > 0.0,
            f"{solo_arb:.1f} ns/packet solo -> {pair_arb:.1f} ns/packet "
            "contended",
        ),
        Check(
            "The walker is not to blame: mean IOMMU walker service per "
            f"walk drifts <= {WALKER_DRIFT * 100:.0f}% between solo and "
            "contended",
            solo_walk > 0.0 and walker_drift <= WALKER_DRIFT,
            f"{solo_walk:.1f} ns solo vs {pair_walk:.1f} ns contended "
            f"({walker_drift * 100:.1f}% drift)",
        ),
        Check(
            "The Chrome trace-event export is valid JSON with the "
            "ph/ts/dur/pid/tid schema Perfetto loads",
            export_ok,
            export_note,
        ),
    ]

    table_rows = [
        [
            "solo",
            len(solo_traces),
            solo_arb,
            solo_walk,
            len(solo),
        ],
        [
            "contended",
            len(pair_traces),
            pair_arb,
            pair_walk,
            len(pair),
        ],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=[
            "victim run",
            "traced packets",
            "arb wait (ns/pkt)",
            "walker mean (ns)",
            "spans",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            "stages: ring admission -> descriptor issue -> payload DMA -> "
            "completion delivery (contiguous, so they telescope)",
            "arb wait aggregates every arb:<resource>@<node> span; walker "
            "mean is per walker service span",
        ],
    )
