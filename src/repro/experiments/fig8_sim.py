"""Figure 8 (simulated): the remote-NUMA bandwidth dip under bounded DMA tags.

The paper's Figure 8 shows DMA *bandwidth* — not just latency — collapsing
when buffers sit on the remote socket: every DMA's round trip grows by the
interconnect penalty, and because a real NIC holds only a finite pool of
outstanding-DMA tags, longer round trips directly cap how many bytes can
be in flight (throughput <= tags x bytes / round-trip).  An unbounded
datapath cannot show this: extra latency just shifts the distribution
while issue continues, which is exactly what the PR 2 host coupling did.

This experiment drives the host-coupled datapath with a small fixed-size
saturating workload and sweeps the tag-pool size for local and remote
payload placement:

* **Dip.** With a small tag pool, remote placement costs at least 10% of
  simulated throughput against local placement at the same pool size —
  the Figure 8 bandwidth dip, reproduced from first principles.
* **Vanishing.** With the pool unbounded, local and remote agree within
  2%: the dip is *caused* by finite tags, not by the penalty itself.
* **Recovery.** Growing the pool from the small setting to unbounded
  recovers the link-limited throughput, and the local/remote gap shrinks
  well below the small-pool dip by 32 tags.
* **Contract.** Unbounded-tag coupled runs (both placements) stay inside
  the 10% analytic cross-validation band — bounding tags is a strict
  extension, not a recalibration.
"""

from __future__ import annotations

from ..sim.nichost import NicHostConfig
from ..sim.nicsim import NicSimResult, cross_validate, simulate_nic
from ..units import KIB
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-8-sim"
TITLE = (
    "Remote-NUMA bandwidth dip under bounded in-flight DMA tags "
    "(Figure 8 revisited)"
)

#: Two-socket Broadwell host — the only profile with a remote node.
SYSTEM = "NFP6000-BDW"
#: Packet size: small enough that the ~100 ns interconnect adder is a large
#: fraction of a DMA round trip (at 1500 B link serialisation dominates and
#: the dip washes out — the same reason Figure 8 uses small transfers).
PACKET_SIZE = 256
#: Payload window inside the IOTLB reach and the DDIO slice, kept warm, so
#: the *only* difference between the two placements is the socket hop.
WINDOW = 256 * KIB
#: Tag-pool sizes swept (the x axis); ``None`` (unbounded) goes in the table.
TAG_SWEEP = (4, 8, 16, 32)
#: The "small pool" the dip check reads.
SMALL_TAGS = TAG_SWEEP[0]
#: Required dip with the small pool / allowed residual gap unbounded.
DIP_FLOOR = 0.10
RESIDUAL_CEILING = 0.02
#: Cross-validation tolerance (the PR 1/PR 2 contract).
TOLERANCE = 0.10


def _host(placement: str) -> NicHostConfig:
    return NicHostConfig(
        system=SYSTEM,
        payload_window=WINDOW,
        payload_cache_state="host_warm",
        payload_placement=placement,
    )


def _run(placement: str, tags: int | None, packets: int) -> NicSimResult:
    return simulate_nic(
        "dpdk",
        "fixed",
        packets=packets,
        packet_size=PACKET_SIZE,
        host=_host(placement),
        dma_tags=tags,
    )


def run(quick: bool = True) -> ExperimentResult:
    """Sweep placement x tag-pool size and check the dip appears/vanishes."""
    packets = 2200 if quick else 6000
    xval_packets = 2000 if quick else 4000

    results: dict[tuple[str, int | None], NicSimResult] = {}
    series: dict[str, list[tuple[float, float]]] = {"local": [], "remote": []}
    for placement in ("local", "remote"):
        for tags in (*TAG_SWEEP, None):
            result = _run(placement, tags, packets)
            results[(placement, tags)] = result
            if tags is not None:
                series[placement].append(
                    (float(tags), result.throughput_gbps)
                )

    def gap(tags: int | None) -> float:
        local = results[("local", tags)].throughput_gbps
        remote = results[("remote", tags)].throughput_gbps
        return (local - remote) / local

    small_dip = gap(SMALL_TAGS)
    wide_gap = gap(TAG_SWEEP[-1])
    residual = gap(None)
    small_local = results[("local", SMALL_TAGS)]
    unbounded_local = results[("local", None)]
    assert small_local.tags is not None

    xval_points = [
        point
        for placement in ("local", "remote")
        for point in cross_validate(
            "dpdk",
            (PACKET_SIZE,),
            packets=xval_packets,
            host=_host(placement),
        )
    ]
    worst_xval = max(point.relative_error for point in xval_points)

    checks = [
        Check(
            f"A small tag pool ({SMALL_TAGS} tags) turns the remote-NUMA "
            "penalty into a >=10% throughput dip (the Figure 8 bandwidth "
            "collapse)",
            small_dip >= DIP_FLOOR,
            f"local {results[('local', SMALL_TAGS)].throughput_gbps:.1f} "
            f"vs remote {results[('remote', SMALL_TAGS)].throughput_gbps:.1f} "
            f"Gb/s ({small_dip * 100:.1f}% dip)",
        ),
        Check(
            "With unbounded tags the dip vanishes (within 2%): the "
            "penalty only moves the latency distribution",
            abs(residual) <= RESIDUAL_CEILING,
            f"local {unbounded_local.throughput_gbps:.1f} vs remote "
            f"{results[('remote', None)].throughput_gbps:.1f} Gb/s "
            f"({residual * 100:+.1f}% gap)",
        ),
        Check(
            f"By {TAG_SWEEP[-1]} tags the gap has fallen below half the "
            "small-pool dip",
            abs(wide_gap) <= small_dip / 2,
            f"{wide_gap * 100:+.1f}% at {TAG_SWEEP[-1]} tags vs "
            f"{small_dip * 100:.1f}% at {SMALL_TAGS}",
        ),
        Check(
            "The small pool actually binds (peak in-flight == capacity) "
            "and unbinding it recovers throughput",
            small_local.tags.max_in_flight == SMALL_TAGS
            and unbounded_local.throughput_gbps
            > 1.2 * small_local.throughput_gbps,
            f"peak in-flight {small_local.tags.max_in_flight}/{SMALL_TAGS}, "
            f"{small_local.throughput_gbps:.1f} -> "
            f"{unbounded_local.throughput_gbps:.1f} Gb/s unbounded",
        ),
        Check(
            "Unbounded-tag coupled runs keep the 10% analytic agreement "
            "(both placements)",
            all(point.within(TOLERANCE) for point in xval_points),
            f"worst deviation {worst_xval * 100:.1f}%",
        ),
    ]

    table_rows = [
        [
            f"{placement}, {'unbounded' if tags is None else tags} tags",
            result.throughput_gbps,
            (
                float(result.tags.max_in_flight)
                if result.tags is not None
                else float("nan")
            ),
            (
                result.tags.wait_ns_mean
                if result.tags is not None
                else 0.0
            ),
            100.0 * (result.host.remote_fraction if result.host else 0.0),
        ]
        for (placement, tags), result in results.items()
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="DMA tag pool size",
        y_label="Throughput (Gb/s)",
        table_headers=[
            "scenario",
            "throughput (Gb/s)",
            "peak tags in flight",
            "mean tag wait (ns)",
            "remote DMA %",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            f"All runs: DPDK model, {PACKET_SIZE} B fixed-size saturating "
            f"full-duplex traffic on the {SYSTEM} profile with a "
            "256 KiB warm payload window — inside the IOTLB reach and the "
            "DDIO slice, so the socket hop is the only placement effect.",
            "Reads hold a tag for the full host round trip and posted "
            "writes until the root complex drains them, so remote "
            "placement stretches tag occupancy on both directions.",
            "The same sweep with dma_tags=None reproduces the PR 2 "
            "behaviour: identical throughput either side, latency only.",
        ],
    )
