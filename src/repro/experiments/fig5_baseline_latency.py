"""Figure 5: median DMA latency versus transfer size (NFP vs NetFPGA).

The paper reports median LAT_RD and LAT_WRRD for transfer sizes from 8 B to
2 KiB on the NFP6000-HSW and NetFPGA-HSW systems (warm 8 KiB buffer), with
minimum and 95th percentile error bars.

Paper claims checked:

* both devices sit in the same order of magnitude — the bulk of the latency
  is host/PCIe, not the device;
* the NFP starts about 100 ns above the NetFPGA (DMA-descriptor enqueue
  overhead) and the gap widens with transfer size (internal staging copy);
* LAT_WRRD exceeds LAT_RD at the same size;
* latency grows with transfer size for both devices.
"""

from __future__ import annotations

from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB
from .base import Check, ExperimentResult, monotonic_increasing, value_at

EXPERIMENT_ID = "figure-5"
TITLE = "Median DMA latency vs transfer size (LAT_RD / LAT_WRRD, NFP vs NetFPGA)"

TRANSFER_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)
SYSTEMS = ("NFP6000-HSW", "NetFPGA-HSW")


def run(quick: bool = True) -> ExperimentResult:
    """Measure the latency curves on both systems."""
    samples = 2000 if quick else 20000
    runner = BenchmarkRunner()
    series: dict[str, list[tuple[float, float]]] = {}
    spreads: dict[str, list[tuple[float, float]]] = {}

    for system in SYSTEMS:
        for kind in (BenchmarkKind.LAT_RD, BenchmarkKind.LAT_WRRD):
            base = BenchmarkParams(
                kind=kind,
                transfer_size=8,
                window_size=8 * KIB,
                cache_state="host_warm",
                system=system,
                transactions=samples,
            )
            results = runner.sweep_transfer_size(base, TRANSFER_SIZES)
            series[f"{kind.value} ({system})"] = [
                (r.params.transfer_size, r.latency.median) for r in results
            ]
            spreads[f"{kind.value} ({system})"] = [
                (r.params.transfer_size, r.latency.spread_95_to_min) for r in results
            ]

    nfp_rd = series["LAT_RD (NFP6000-HSW)"]
    netfpga_rd = series["LAT_RD (NetFPGA-HSW)"]
    nfp_wrrd = series["LAT_WRRD (NFP6000-HSW)"]

    gap_small = value_at(nfp_rd, 8) - value_at(netfpga_rd, 8)
    gap_large = value_at(nfp_rd, 2048) - value_at(netfpga_rd, 2048)
    checks = [
        Check(
            "Both devices show the same order of magnitude (host dominates latency)",
            all(
                200.0 <= value_at(curve, 64) <= 2000.0
                for curve in (nfp_rd, netfpga_rd)
            ),
            f"64 B medians: NFP {value_at(nfp_rd, 64):.0f} ns, "
            f"NetFPGA {value_at(netfpga_rd, 64):.0f} ns",
        ),
        Check(
            "NFP pays a fixed ~100 ns enqueue offset over the NetFPGA at small sizes",
            50.0 <= gap_small <= 200.0,
            f"gap at 8 B = {gap_small:.0f} ns",
        ),
        Check(
            "The NFP/NetFPGA gap widens with transfer size (internal staging copy)",
            gap_large > gap_small + 50.0,
            f"gap grows from {gap_small:.0f} ns (8 B) to {gap_large:.0f} ns (2048 B)",
        ),
        Check(
            "LAT_WRRD exceeds LAT_RD at every size",
            all(
                value_at(nfp_wrrd, size) > value_at(nfp_rd, size)
                for size in TRANSFER_SIZES
            ),
            "write-then-read adds ordering and write serialisation",
        ),
        Check(
            "Median latency grows with transfer size",
            monotonic_increasing(nfp_rd, tolerance=20.0)
            and monotonic_increasing(netfpga_rd, tolerance=20.0),
            "both LAT_RD curves are non-decreasing",
        ),
        Check(
            "Xeon E5 latencies show little variance (min to p95 band is narrow)",
            all(
                spread <= 150.0
                for _, spread in spreads["LAT_RD (NetFPGA-HSW)"]
            ),
            "p95 - min under 150 ns at every size on the E5 host",
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Transfer size (B)",
        y_label="Median latency (ns)",
        checks=checks,
        notes=[f"{samples} timed transactions per point (2 million in the paper)."],
    )
