"""Shared infrastructure for the per-figure/per-table experiment drivers.

Every experiment driver produces an :class:`ExperimentResult`: the data
series that regenerate the paper's figure (or the rows of its table), plus a
list of :class:`Check` records that compare the measured *shape* against the
claims the paper makes about that figure.  Checks compare qualitative
behaviour (who wins, where cliffs fall, rough factors), never absolute
numbers, because the substrate here is a simulator rather than the authors'
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.table import format_series_table, format_table
from ..errors import AnalysisError


@dataclass(frozen=True)
class Check:
    """One qualitative expectation derived from the paper."""

    description: str
    passed: bool
    detail: str = ""

    def status(self) -> str:
        """``PASS`` or ``FAIL`` marker used in reports."""
        return "PASS" if self.passed else "FAIL"


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    Attributes:
        experiment_id: identifier such as ``"figure-4"`` or ``"table-1"``.
        title: human-readable title matching the paper's caption.
        series: named ``(x, y)`` curves (empty for table-style experiments).
        x_label / y_label: axis labels for the series.
        table_headers / table_rows: tabular output (empty for figure-style
            experiments that only have curves).
        checks: shape checks against the paper's claims.
        notes: free-form remarks (calibration caveats, known deviations).
    """

    experiment_id: str
    title: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    x_label: str = "x"
    y_label: str = "y"
    table_headers: list[str] = field(default_factory=list)
    table_rows: list[list[object]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every shape check passed."""
        return all(check.passed for check in self.checks)

    @property
    def passed_checks(self) -> int:
        """Number of passing checks."""
        return sum(1 for check in self.checks if check.passed)

    def check_summary(self) -> str:
        """One-line summary such as ``"5/5 checks passed"``."""
        return f"{self.passed_checks}/{len(self.checks)} checks passed"

    def to_text(self) -> str:
        """Render the experiment result for terminal output."""
        sections = [f"{self.experiment_id}: {self.title}"]
        if self.series:
            sections.append(
                format_series_table(
                    self.series, x_label=self.x_label, title=f"[{self.y_label}]"
                )
            )
        if self.table_rows:
            if not self.table_headers:
                raise AnalysisError("table rows provided without headers")
            sections.append(format_table(self.table_headers, self.table_rows))
        if self.checks:
            check_rows = [
                [check.status(), check.description, check.detail]
                for check in self.checks
            ]
            sections.append(
                format_table(["status", "paper claim", "measured"], check_rows)
            )
        if self.notes:
            sections.append("\n".join(f"note: {note}" for note in self.notes))
        return "\n\n".join(sections)


def monotonic_increasing(points: list[tuple[float, float]], *, tolerance: float = 0.0) -> bool:
    """Whether a series never decreases by more than ``tolerance``."""
    values = [y for _, y in points]
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def crossover_x(
    series_a: list[tuple[float, float]],
    series_b: list[tuple[float, float]],
) -> float | None:
    """Smallest x at which series A reaches or exceeds series B.

    Both series must be sampled at the same x values.  Returns ``None`` when
    A never catches B.
    """
    lookup_b = dict(series_b)
    for x, y in sorted(series_a):
        if x in lookup_b and y >= lookup_b[x]:
            return x
    return None


def value_at(points: list[tuple[float, float]], x: float) -> float:
    """The y value at a given x (exact match required)."""
    for px, py in points:
        if px == x:
            return py
    raise AnalysisError(f"no point at x={x}")
