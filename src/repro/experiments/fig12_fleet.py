"""Figure 12 (new): placement policy shifts the fleet-wide tail-SLO curve.

The rack-scale question behind the paper's single-host characterisation:
once host-level PCIe contention is understood, what does a *fleet* of such
hosts look like to a capacity planner?  This experiment simulates a rack
whose Zipf-skewed tenant population is mapped onto hosts by two placement
policies — ``spread`` (deal tenants round-robin, everyone shares the
pain) and ``pack`` (consolidate onto half the rack, the rest runs clean)
— and scores both against latency SLOs: the fraction of hosts whose
victim p99 breaks the threshold.

The statistics ride on the O(1)-memory streaming layer: every device runs
``retain_samples=False``, per-host latency sketches merge into the
rack-wide distribution in host order, and the experiment pins the three
contracts the fleet depends on:

* the quantile sketch reproduces exact (nearest-rank) percentiles within
  1% on the golden-pinned seeded datapath scenario;
* sharding hosts over worker processes is invisible — ``jobs=1`` and
  ``jobs=2`` fleet records are bit-identical;
* placement measurably moves the SLO-violating fraction: pack leaves
  clean hosts below thresholds that the packed (or evenly loaded) hosts
  break.
"""

from __future__ import annotations

import numpy as np

from ..bench.fleet import FleetParams, run_fleet_benchmark
from ..sim.nicsim import NicDatapathSimulator, NicSimConfig
from ..sim.nichost import NicHostConfig
from ..stats import QuantileSketch
from ..units import MIB
from ..workloads import build_workload
from .base import Check, ExperimentResult

EXPERIMENT_ID = "figure-12-fleet"
TITLE = (
    "Rack-scale fleet: tenant placement policy shifts the fleet-wide "
    "tail-SLO curve (O(1)-memory streaming statistics)"
)

#: The acceptance budget for sketch-vs-exact percentiles (relative error).
SKETCH_TOLERANCE = 0.01

#: The seeded host-coupled scenario pinned by ``tests/golden/nicsim_seeded.json``
#: (dpdk, IMIX at 20 Gb/s, 600 packets, ring 256, NFP6000-BDW with IOMMU,
#: 1 MiB device-warm window, seed 7) — the sketch accuracy check runs the
#: same datapath and compares against its exact per-packet latencies.
GOLDEN_SEED = 7
GOLDEN_PACKETS = 600


def _golden_scenario_latencies() -> dict[str, np.ndarray]:
    """Exact per-packet latency samples of the golden-pinned scenario."""
    simulator = NicDatapathSimulator(
        "dpdk",
        sim_config=NicSimConfig(
            ring_depth=256,
            host=NicHostConfig(
                system="NFP6000-BDW",
                iommu_enabled=True,
                payload_window=1 * MIB,
                payload_cache_state="device_warm",
            ),
        ),
    )
    workload = build_workload("imix", load_gbps=20.0)
    simulator.run(workload, GOLDEN_PACKETS, seed=GOLDEN_SEED)
    return {
        direction: trace.notifies_ns - trace.arrivals_ns
        for direction, trace in simulator.last_traces.items()
    }


def _fleet_params(quick: bool) -> FleetParams:
    return FleetParams(
        hosts=4 if quick else 8,
        tenants=8 if quick else 16,
        victim_packets=200 if quick else 400,
        aggressor_packets=800 if quick else 2400,
        seed=GOLDEN_SEED,
    )


def run(quick: bool = True) -> ExperimentResult:
    """Run both placements, verify the streaming contracts, score the SLOs."""
    # -- contract 1: sketch accuracy on the golden-pinned scenario -------------
    sketch_errors: dict[str, float] = {}
    for direction, samples in _golden_scenario_latencies().items():
        sketch = QuantileSketch()
        sketch.add_many(samples)
        for quantile, label in ((0.99, "p99"), (0.999, "p99.9")):
            exact = float(
                np.percentile(samples, quantile * 100.0, method="lower")
            )
            estimate = sketch.quantile(quantile)
            sketch_errors[f"{direction} {label}"] = abs(estimate - exact) / exact

    worst_error = max(sketch_errors.values())

    # -- contract 2 + the figure: both placements, serial and sharded ----------
    base = _fleet_params(quick)
    spread = run_fleet_benchmark(base)
    sharded = run_fleet_benchmark(base, jobs=2)
    pack = run_fleet_benchmark(base.with_(placement="pack"))

    shard_identical = spread.as_dict() == sharded.as_dict()

    # -- contract 3: placement shifts the violating fraction -------------------
    # Threshold between the clean hosts' tails and the loaded hosts' tails:
    # the geometric middle of the rack-wide p99 spread across both runs.
    tails = [host.victim_latency.p99 for host in spread.hosts] + [
        host.victim_latency.p99 for host in pack.hosts
    ]
    threshold = float(np.sqrt(min(tails) * max(tails)))
    spread_fraction = spread.slo_violation_fraction(threshold)
    pack_fraction = pack.slo_violation_fraction(threshold)
    shift = abs(spread_fraction - pack_fraction)

    clean_hosts = [
        host for host in pack.hosts if host.aggressor_load_gbps is None
    ]

    checks = [
        Check(
            "The streaming quantile sketch reproduces the golden seeded "
            f"scenario's exact p99/p99.9 within {SKETCH_TOLERANCE * 100:.0f}%",
            worst_error <= SKETCH_TOLERANCE,
            "worst relative error "
            f"{worst_error * 100:.3f}% over {sorted(sketch_errors)}",
        ),
        Check(
            "Sharding hosts over worker processes is invisible: jobs=1 "
            "and jobs=2 fleet records are bit-identical",
            shard_identical,
            f"fleet p99 {spread.fleet_latency.p99:.1f} ns in both",
        ),
        Check(
            "Packing concentrates the aggressors: the pack policy leaves "
            "part of the rack aggressor-free",
            0 < len(clean_hosts) < len(pack.hosts),
            f"{len(clean_hosts)}/{len(pack.hosts)} hosts clean under pack, "
            f"0/{len(spread.hosts)} under spread",
        ),
        Check(
            "Placement measurably shifts the fleet-wide SLO curve: at a "
            "threshold between the clean and loaded tails, the violating "
            "fraction moves by at least one host in the rack",
            shift >= 1.0 / base.hosts,
            f"p99 < {threshold:.0f} ns: spread "
            f"{spread_fraction * 100:.0f}% vs pack "
            f"{pack_fraction * 100:.0f}% violating",
        ),
        Check(
            "The rack-wide merged distribution spans every host: the "
            "fleet sketch count is the sum of the per-host counts",
            spread.fleet_latency.count
            == sum(host.victim_latency.count for host in spread.hosts),
            f"{spread.fleet_latency.count} merged samples",
        ),
    ]

    series = {
        "spread": [
            (float(index), host.victim_latency.p99)
            for index, host in enumerate(spread.hosts)
        ],
        "pack": [
            (float(index), host.victim_latency.p99)
            for index, host in enumerate(pack.hosts)
        ],
    }
    table_rows = []
    for label, result in (("spread", spread), ("pack", pack)):
        for host in result.hosts:
            table_rows.append(
                [
                    f"{label}, {host.name}",
                    "-"
                    if host.aggressor_load_gbps is None
                    else f"{host.aggressor_load_gbps:.1f}",
                    host.victim_latency.p99,
                    host.victim_latency.p999,
                    host.victim_throughput_gbps,
                    host.victim_drops,
                ]
            )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="host index",
        y_label="victim p99 (ns)",
        table_headers=[
            "policy, host",
            "aggressor (Gb/s)",
            "victim p99 (ns)",
            "p99.9 (ns)",
            "delivered (Gb/s)",
            "drops",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            "Every device streams its latencies through the mergeable "
            "quantile sketch (retain_samples=False): a host result costs "
            "O(buckets) memory however many packets it simulated, and the "
            "rack-wide distribution is the host-order merge of the "
            "per-host sketches.",
            "Per-host seeds are SeedSequence substreams of the fleet seed "
            "keyed by host index, so the sharded and serial runs execute "
            "identical host simulations — the bit-identity check is over "
            "the full serialised record, sketches included.",
            "The rack's nominal aggressor load is split by Zipf tenant "
            "demand share under the placement; pack consolidates tenants "
            "onto half the rack, so its loaded hosts run hotter while its "
            "tail runs clean — that is the SLO trade the scorecard shows.",
        ],
    )
