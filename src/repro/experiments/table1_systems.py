"""Table 1: system configurations used throughout the evaluation.

The table itself is descriptive — CPU, NUMA arrangement, micro-architecture,
memory, OS/kernel and adapter of every system — but reproducing it matters
because every other experiment names its system by a Table 1 identifier.
The checks verify the registry matches the paper's rows.
"""

from __future__ import annotations

from ..sim.profiles import TABLE1_PROFILES, get_profile
from ..units import MIB
from .base import Check, ExperimentResult

EXPERIMENT_ID = "table-1"
TITLE = "System configurations (Table 1)"

#: (name, architecture, NUMA sockets, adapter keyword, LLC MiB) per the paper.
EXPECTED_ROWS = (
    ("NFP6000-BDW", "Broadwell", 2, "NFP6000", 25),
    ("NetFPGA-HSW", "Haswell", 1, "NetFPGA", 15),
    ("NFP6000-HSW", "Haswell", 1, "NFP6000", 15),
    ("NFP6000-HSW-E3", "Haswell", 1, "NFP6000", 15),
    ("NFP6000-IB", "Ivy Bridge", 2, "NFP6000", 15),
    ("NFP6000-SNB", "Sandy Bridge", 1, "NFP6000", 15),
)


def run(quick: bool = True) -> ExperimentResult:
    """Emit the Table 1 rows from the profile registry and verify them."""
    headers = ["Name", "CPU", "NUMA", "Architecture", "Memory", "OS/Kernel",
               "Network Adapter", "LLC"]
    rows = []
    for profile in TABLE1_PROFILES:
        row = profile.table1_row()
        rows.append([row[column] for column in headers])

    checks = [
        Check(
            "All six systems of Table 1 are modelled",
            len(TABLE1_PROFILES) == len(EXPECTED_ROWS),
            f"{len(TABLE1_PROFILES)} profiles registered",
        )
    ]
    for name, architecture, sockets, adapter, llc_mib in EXPECTED_ROWS:
        try:
            profile = get_profile(name)
        except Exception as error:  # pragma: no cover - defensive
            checks.append(Check(f"{name} is registered", False, str(error)))
            continue
        matches = (
            profile.architecture == architecture
            and profile.sockets == sockets
            and adapter.lower() in profile.adapter.lower()
            and int(round(profile.llc_bytes / MIB)) == llc_mib
        )
        checks.append(
            Check(
                f"{name}: {architecture}, {sockets} socket(s), {adapter}, {llc_mib} MiB LLC",
                matches,
                f"{profile.architecture}, {profile.sockets} socket(s), "
                f"{profile.adapter}, {profile.llc_bytes // MIB} MiB",
            )
        )
    checks.append(
        Check(
            "Only the Broadwell system has the larger 25 MiB LLC",
            sum(1 for p in TABLE1_PROFILES if p.llc_bytes == 25 * MIB) == 1
            and get_profile("NFP6000-BDW").llc_bytes == 25 * MIB,
            "one 25 MiB profile: NFP6000-BDW",
        )
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=headers,
        table_rows=rows,
        checks=checks,
    )
