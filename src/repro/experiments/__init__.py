"""Experiment drivers: one per figure/table of the paper's evaluation."""

from .base import Check, ExperimentResult
from .registry import (
    EXPERIMENTS,
    experiment_ids,
    get_runner,
    run_all,
    run_experiment,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "get_runner",
    "run_all",
    "run_experiment",
]
