"""Figure 4: baseline PCIe DMA bandwidth (BW_RD, BW_WR, BW_RDWR).

The paper measures DMA read, write and alternating read/write bandwidth for
the NFP6000-HSW and NetFPGA-HSW systems against a warm 8 KiB host buffer and
compares them to the analytical model and the 40G Ethernet requirement.

Paper claims checked (per sub-figure):

* the NetFPGA tracks the analytical model closely for large transfers;
* the NFP achieves slightly lower throughput than the NetFPGA but still
  enough for 40 Gb/s Ethernet at larger transfer sizes;
* neither implementation reaches the read throughput 40G Ethernet needs at
  small packet sizes;
* write bandwidth at moderate sizes reaches the model's effective bandwidth.
"""

from __future__ import annotations

from ..core.config import PAPER_DEFAULT_CONFIG
from ..core.ethernet import ETHERNET_40G
from ..core.model import PCIeModel
from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-4"
TITLE = "Baseline DMA bandwidth vs model (NFP6000-HSW, NetFPGA-HSW, warm 8KiB buffer)"

#: Transfer sizes measured; the paper samples 64-2048 B with extra points
#: around TLP and cache-line boundaries.
TRANSFER_SIZES = (64, 128, 255, 256, 257, 384, 512, 768, 1024, 1536, 2048)

SYSTEMS = ("NFP6000-HSW", "NetFPGA-HSW")

_MODEL_KIND = {
    BenchmarkKind.BW_RD: "read",
    BenchmarkKind.BW_WR: "write",
    BenchmarkKind.BW_RDWR: "bidirectional",
}


def run(quick: bool = True) -> ExperimentResult:
    """Run the three bandwidth benchmarks on both systems and compare to the model."""
    transactions = 1200 if quick else 6000
    model = PCIeModel.gen3_x8()
    runner = BenchmarkRunner()

    series: dict[str, list[tuple[float, float]]] = {}
    for kind in (BenchmarkKind.BW_RD, BenchmarkKind.BW_WR, BenchmarkKind.BW_RDWR):
        series[f"Model {kind.value}"] = model.bandwidth_sweep(
            TRANSFER_SIZES, kind=_MODEL_KIND[kind]
        )
    series["40G Ethernet"] = [
        (size, ETHERNET_40G.frame_throughput_gbps(size)) for size in TRANSFER_SIZES
    ]
    for system in SYSTEMS:
        for kind in (BenchmarkKind.BW_RD, BenchmarkKind.BW_WR, BenchmarkKind.BW_RDWR):
            base = BenchmarkParams(
                kind=kind,
                transfer_size=64,
                window_size=8 * KIB,
                cache_state="host_warm",
                system=system,
                transactions=transactions,
            )
            results = runner.sweep_transfer_size(base, TRANSFER_SIZES)
            series[f"{kind.value} ({system})"] = [
                (r.params.transfer_size, r.bandwidth_gbps or 0.0) for r in results
            ]

    checks = _build_checks(series)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Transfer size (B)",
        y_label="Bandwidth (Gb/s)",
        checks=checks,
        notes=[
            f"{transactions} DMAs per point (the paper uses 8 million on hardware).",
            "Sub-figures (a)/(b)/(c) of the paper correspond to the BW_RD / BW_WR / "
            "BW_RDWR series here.",
        ],
    )


def _build_checks(series: dict[str, list[tuple[float, float]]]) -> list[Check]:
    checks = []
    netfpga_rd = series["BW_RD (NetFPGA-HSW)"]
    nfp_rd = series["BW_RD (NFP6000-HSW)"]
    model_rd = series["Model BW_RD"]
    ethernet = series["40G Ethernet"]

    large_gap = abs(value_at(netfpga_rd, 2048) - value_at(model_rd, 2048))
    checks.append(
        Check(
            "NetFPGA read bandwidth tracks the model closely for large transfers",
            large_gap <= 5.0,
            f"gap at 2048 B = {large_gap:.1f} Gb/s",
        )
    )
    nfp_below = all(
        value_at(nfp_rd, size) <= value_at(netfpga_rd, size) + 1.0
        for size, _ in nfp_rd
    )
    checks.append(
        Check(
            "NFP read throughput is slightly lower than (or equal to) the NetFPGA's",
            nfp_below,
            "NFP <= NetFPGA + 1 Gb/s at every transfer size",
        )
    )
    small_read_short = (
        value_at(nfp_rd, 64) < value_at(ethernet, 64)
        and value_at(netfpga_rd, 64) < value_at(ethernet, 64)
    )
    checks.append(
        Check(
            "Neither device reads fast enough for 40G line rate at small packets",
            small_read_short,
            f"64 B reads: NFP {value_at(nfp_rd, 64):.1f}, NetFPGA "
            f"{value_at(netfpga_rd, 64):.1f} vs requirement "
            f"{value_at(ethernet, 64):.1f} Gb/s",
        )
    )
    nfp_large_ok = value_at(nfp_rd, 1024) >= value_at(ethernet, 1024)
    checks.append(
        Check(
            "The NFP still sustains 40G Ethernet rates at larger transfers",
            nfp_large_ok,
            f"1024 B read: {value_at(nfp_rd, 1024):.1f} Gb/s vs requirement "
            f"{value_at(ethernet, 1024):.1f} Gb/s",
        )
    )
    write_match = (
        abs(
            value_at(series["BW_WR (NetFPGA-HSW)"], 512)
            - value_at(series["Model BW_WR"], 512)
        )
        <= 5.0
    )
    checks.append(
        Check(
            "Write bandwidth reaches the model's effective bandwidth by 512 B",
            write_match,
            f"NetFPGA 512 B write {value_at(series['BW_WR (NetFPGA-HSW)'], 512):.1f} "
            f"vs model {value_at(series['Model BW_WR'], 512):.1f} Gb/s",
        )
    )
    rdwr_below = value_at(series["BW_RDWR (NFP6000-HSW)"], 64) < value_at(
        series["BW_RD (NFP6000-HSW)"], 64
    )
    checks.append(
        Check(
            "Alternating read/write is the most demanding mix at small sizes",
            rdwr_below,
            "BW_RDWR(64 B) < BW_RD(64 B) on the NFP",
        )
    )
    return checks
