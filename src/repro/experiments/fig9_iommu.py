"""Figure 9: impact of the IOMMU on DMA read bandwidth (NFP6000-BDW).

With the IOMMU enabled (and super-pages disabled, i.e. 4 KiB mappings), the
paper measures the percentage change of DMA read bandwidth relative to the
same experiment without the IOMMU, across window sizes and transfer sizes.

Paper claims checked:

* no measurable difference while the working set fits the IOTLB reach
  (64 entries x 4 KiB = 256 KiB);
* beyond that, 64 B read bandwidth collapses by roughly 60-75 %;
* the drop shrinks with transfer size (roughly 30 % at 256 B) and vanishes
  by 512 B;
* the latency cost of an IOTLB miss is roughly 330 ns;
* super-pages (2 MiB mappings) remove the cliff — the paper's headline
  recommendation in Table 2.
"""

from __future__ import annotations

from ..bench.params import BenchmarkKind, BenchmarkParams
from ..bench.runner import BenchmarkRunner
from ..units import KIB, MIB
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-9"
TITLE = "IOMMU impact on DMA read bandwidth, warm cache (NFP6000-BDW)"

SYSTEM = "NFP6000-BDW"
TRANSFER_SIZES = (64, 128, 256, 512)
WINDOWS = tuple(4 * KIB * (4**i) for i in range(8))
#: IOTLB reach with 4 KiB pages and 64 entries.
IOTLB_REACH = 256 * KIB


def run(quick: bool = True) -> ExperimentResult:
    """Measure the IOMMU-induced bandwidth change across windows and sizes."""
    transactions = 1500 if quick else 8000
    runner = BenchmarkRunner()
    series: dict[str, list[tuple[float, float]]] = {}

    for size in TRANSFER_SIZES:
        points = []
        for window in WINDOWS:
            bandwidths = {}
            for iommu_enabled in (False, True):
                params = BenchmarkParams(
                    kind=BenchmarkKind.BW_RD,
                    transfer_size=size,
                    window_size=window,
                    cache_state="host_warm",
                    iommu_enabled=iommu_enabled,
                    system=SYSTEM,
                    transactions=transactions,
                )
                bandwidths[iommu_enabled] = runner.run(params).bandwidth_gbps or 0.0
            change = 100.0 * (bandwidths[True] - bandwidths[False]) / bandwidths[False]
            points.append((window, change))
        series[f"{size}B BW_RD"] = points

    # Latency cost of an IOTLB miss: 64 B LAT_RD over a window far beyond the
    # IOTLB reach, IOMMU on vs off.
    miss_latency = {}
    for iommu_enabled in (False, True):
        params = BenchmarkParams(
            kind=BenchmarkKind.LAT_RD,
            transfer_size=64,
            window_size=64 * MIB,
            cache_state="host_warm",
            iommu_enabled=iommu_enabled,
            system=SYSTEM,
            transactions=1500 if quick else 10000,
        )
        miss_latency[iommu_enabled] = runner.run(params).latency.median
    miss_cost = miss_latency[True] - miss_latency[False]

    # Super-page mitigation: the same large-window 64 B bandwidth with 2 MiB
    # mappings should show no cliff.
    superpage_change = _superpage_change(runner, transactions)

    large_window = WINDOWS[-1]
    checks = [
        Check(
            "No measurable impact while the window fits the IOTLB reach (256 KiB)",
            all(
                value_at(series[f"{size}B BW_RD"], window) >= -8.0
                for size in TRANSFER_SIZES
                for window in WINDOWS
                if window <= IOTLB_REACH
            ),
            "all changes within 8% for windows <= 256 KiB",
        ),
        Check(
            "64 B read bandwidth collapses (~60-75%) for large windows",
            -80.0 <= value_at(series["64B BW_RD"], large_window) <= -55.0,
            f"64 B change at 64 MiB window = "
            f"{value_at(series['64B BW_RD'], large_window):.1f}%",
        ),
        Check(
            "The drop shrinks with transfer size (roughly 30% at 256 B)",
            -45.0 <= value_at(series["256B BW_RD"], large_window) <= -15.0,
            f"256 B change at 64 MiB window = "
            f"{value_at(series['256B BW_RD'], large_window):.1f}%",
        ),
        Check(
            "No change for 512 B transfers and above",
            all(change >= -5.0 for _, change in series["512B BW_RD"]),
            "512 B change within 5% at every window",
        ),
        Check(
            "An IOTLB miss costs roughly 330 ns",
            230.0 <= miss_cost <= 430.0,
            f"median 64 B LAT_RD rises by {miss_cost:.0f} ns with the IOMMU on",
        ),
        Check(
            "Super-pages (2 MiB mappings) remove the bandwidth cliff",
            superpage_change >= -8.0,
            f"64 B change at 64 MiB window with 2 MiB pages = {superpage_change:.1f}%",
        ),
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="Window size (B)",
        y_label="Bandwidth change vs IOMMU off (%)",
        checks=checks,
        notes=[
            "4 KiB mappings replicate the paper's intel_iommu=on,sp_off setting; "
            "the super-page check models the paper's Table 2 recommendation.",
            f"{transactions} DMAs per point.",
        ],
    )


def _superpage_change(runner: BenchmarkRunner, transactions: int) -> float:
    bandwidths = {}
    for iommu_enabled in (False, True):
        params = BenchmarkParams(
            kind=BenchmarkKind.BW_RD,
            transfer_size=64,
            window_size=64 * MIB,
            cache_state="host_warm",
            iommu_enabled=iommu_enabled,
            iommu_page_size=2 * MIB,
            system=SYSTEM,
            transactions=transactions,
        )
        bandwidths[iommu_enabled] = runner.run(params).bandwidth_gbps or 0.0
    return 100.0 * (bandwidths[True] - bandwidths[False]) / bandwidths[False]
