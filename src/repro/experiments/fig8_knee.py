"""Figure 8 companion: the DMA-tag x ring-depth knee surface.

:mod:`repro.experiments.fig8_sim` sweeps the tag-pool size at one ring
depth and shows the remote-NUMA bandwidth dip.  This sibling maps the
*surface* the ROADMAP flags as unexplored: how many in-flight DMA tags a
datapath needs before throughput saturates, as a function of descriptor
ring depth.  Both resources bound the same quantity — outstanding work —
so whichever is smaller binds:

* **Tag-bound region.**  At small pools every ring depth delivers the
  same (low) throughput: round trips are long (remote buffers) and the
  pool, not the ring, caps bytes in flight.
* **Knee.**  Throughput climbs with the pool until the *ring* becomes the
  binding resource.  The knee (smallest pool within 5% of that ring's
  best) comes no later for shallow rings than for deep ones: a 64-deep
  ring cannot use many more than 64 outstanding DMAs, so tags beyond that
  are wasted silicon.
* **Ring-bound region.**  Past the knee, only deeper rings raise the
  ceiling — the second axis of the surface.
"""

from __future__ import annotations

from ..sim.nichost import NicHostConfig
from ..sim.nicsim import NicSimResult, simulate_nic
from ..units import KIB
from .base import Check, ExperimentResult, value_at

EXPERIMENT_ID = "figure-8-knee"
TITLE = "DMA-tag x ring-depth knee surface (Figure 8 companion)"

#: Two-socket Broadwell host, remote payload buffers: long round trips
#: make tag occupancy expensive, as in figure-8-sim.
SYSTEM = "NFP6000-BDW"
PACKET_SIZE = 256
WINDOW = 256 * KIB
#: The swept axes.
TAG_SWEEP = (4, 8, 16, 32, 64, 128)
RING_SWEEP = (64, 128, 512)
#: A ring's knee: smallest pool within this fraction of its best.
KNEE_FRACTION = 0.95


def _run(ring_depth: int, tags: int, packets: int) -> NicSimResult:
    return simulate_nic(
        "dpdk",
        "fixed",
        packets=packets,
        packet_size=PACKET_SIZE,
        ring_depth=ring_depth,
        host=NicHostConfig(
            system=SYSTEM,
            payload_window=WINDOW,
            payload_cache_state="host_warm",
            payload_placement="remote",
        ),
        dma_tags=tags,
    )


def knee_tags(points: list[tuple[float, float]], *, fraction: float = KNEE_FRACTION) -> float:
    """Smallest swept pool size reaching ``fraction`` of the series' best."""
    best = max(y for _, y in points)
    for tags, throughput in sorted(points):
        if throughput >= fraction * best:
            return tags
    return sorted(points)[-1][0]  # pragma: no cover - best is in points


def run(quick: bool = True) -> ExperimentResult:
    """Sweep tags x ring depth and check the knee surface's shape."""
    packets = 1800 if quick else 5000

    series: dict[str, list[tuple[float, float]]] = {}
    for ring_depth in RING_SWEEP:
        series[f"ring={ring_depth}"] = [
            (float(tags), _run(ring_depth, tags, packets).throughput_gbps)
            for tags in TAG_SWEEP
        ]

    knees = {
        ring_depth: knee_tags(series[f"ring={ring_depth}"])
        for ring_depth in RING_SWEEP
    }
    ceilings = {
        ring_depth: max(y for _, y in series[f"ring={ring_depth}"])
        for ring_depth in RING_SWEEP
    }
    small_pool = {
        ring_depth: value_at(series[f"ring={ring_depth}"], float(TAG_SWEEP[0]))
        for ring_depth in RING_SWEEP
    }
    small_spread = (
        max(small_pool.values()) - min(small_pool.values())
    ) / min(small_pool.values())
    shallow, deep = RING_SWEEP[0], RING_SWEEP[-1]

    monotone = all(
        b >= a * 0.98
        for points in series.values()
        for (_, a), (_, b) in zip(sorted(points), sorted(points)[1:])
    )

    checks = [
        Check(
            "Throughput never falls as the tag pool grows (every ring "
            "depth; 2% tolerance)",
            monotone,
            "; ".join(
                f"ring {ring}: "
                + " -> ".join(f"{y:.0f}" for _, y in sorted(series[f'ring={ring}']))
                for ring in RING_SWEEP
            )
            + " Gb/s",
        ),
        Check(
            f"In the tag-bound region ({TAG_SWEEP[0]} tags) ring depth is "
            "irrelevant: all rings agree within 10%",
            small_spread <= 0.10,
            f"{small_spread * 100:.1f}% spread at {TAG_SWEEP[0]} tags",
        ),
        Check(
            "Every ring depth reaches its knee inside the sweep "
            f"(>= {KNEE_FRACTION:.0%} of its best)",
            all(knees[ring] < TAG_SWEEP[-1] or
                value_at(series[f"ring={ring}"], float(TAG_SWEEP[-1]))
                >= KNEE_FRACTION * ceilings[ring]
                for ring in RING_SWEEP),
            ", ".join(f"ring {ring}: knee at {knees[ring]:.0f} tags" for ring in RING_SWEEP),
        ),
        Check(
            "The knee comes no later for shallow rings than for deep ones "
            "(a shallow ring cannot use a deeper pool)",
            all(
                knees[a] <= knees[b]
                for a, b in zip(RING_SWEEP, RING_SWEEP[1:])
            ),
            ", ".join(
                f"knee({ring}) = {knees[ring]:.0f}" for ring in RING_SWEEP
            ),
        ),
        Check(
            "Past the knee only ring depth raises the ceiling: the deepest "
            "ring out-delivers the shallowest by >= 3% at full pools",
            ceilings[deep] >= 1.03 * ceilings[shallow],
            f"ceiling {ceilings[shallow]:.1f} Gb/s (ring {shallow}) vs "
            f"{ceilings[deep]:.1f} Gb/s (ring {deep})",
        ),
    ]

    table_rows = [
        [
            f"ring={ring_depth}",
            f"{knees[ring_depth]:.0f}",
            small_pool[ring_depth],
            ceilings[ring_depth],
        ]
        for ring_depth in RING_SWEEP
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series=series,
        x_label="DMA tag pool size",
        y_label="Throughput (Gb/s)",
        table_headers=[
            "ring depth",
            "knee (tags)",
            f"Gb/s @ {TAG_SWEEP[0]} tags",
            "ceiling (Gb/s)",
        ],
        table_rows=table_rows,
        checks=checks,
        notes=[
            f"All runs: DPDK model, {PACKET_SIZE} B fixed-size saturating "
            f"full-duplex traffic on {SYSTEM} with a 256 KiB warm payload "
            "window on the remote socket — the figure-8-sim scenario, "
            "swept over both tag pool and ring depth.",
            "Both knobs bound outstanding work: below the knee the tag "
            "pool binds (ring depth irrelevant), above it the ring binds "
            "(more tags are wasted).  Sizing either without the other "
            "leaves throughput on the table.",
        ],
    )
