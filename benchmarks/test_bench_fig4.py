"""Benchmark: regenerate Figure 4 (baseline BW_RD / BW_WR / BW_RDWR vs model)."""

from repro.experiments import fig4_baseline_bandwidth


def test_figure4_baseline_bandwidth(report):
    """DMA bandwidth of NFP6000-HSW and NetFPGA-HSW against the model curves."""
    result = report(fig4_baseline_bandwidth.run)
    assert result.passed, result.to_text()
