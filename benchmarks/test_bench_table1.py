"""Benchmark: regenerate Table 1 (system configurations)."""

from repro.experiments import table1_systems


def test_table1_systems(report):
    """The six evaluation systems and their properties."""
    result = report(table1_systems.run)
    assert result.passed, result.to_text()
