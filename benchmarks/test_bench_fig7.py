"""Benchmark: regenerate Figure 7 (cache and DDIO effects, NFP6000-SNB)."""

from repro.experiments import fig7_cache_ddio


def test_figure7_cache_ddio(report):
    """8 B latency and 64 B bandwidth across window sizes, cold vs warm caches."""
    result = report(fig7_cache_ddio.run)
    assert result.passed, result.to_text()
