"""Benchmark: regenerate Figure 9 (IOMMU impact on DMA read bandwidth)."""

from repro.experiments import fig9_iommu


def test_figure9_iommu(report):
    """Percentage change of read bandwidth with the IOMMU enabled (4 KiB pages)."""
    result = report(fig9_iommu.run)
    assert result.passed, result.to_text()
