"""Benchmark: regenerate Figure 1 (modelled NIC throughput curves)."""

from repro.experiments import fig1_throughput_models


def test_figure1_throughput_models(report):
    """Effective PCIe BW, 40G Ethernet and the three NIC models vs packet size."""
    result = report(fig1_throughput_models.run)
    assert result.passed, result.to_text()
