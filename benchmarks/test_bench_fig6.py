"""Benchmark: regenerate Figure 6 (64 B read latency CDF, Xeon E5 vs E3)."""

from repro.experiments import fig6_latency_distribution


def test_figure6_latency_distribution(report):
    """Latency distributions of the tight E5 and the heavy-tailed E3 systems."""
    result = report(fig6_latency_distribution.run)
    assert result.passed, result.to_text()
