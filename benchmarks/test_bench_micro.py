"""Micro-benchmarks of the simulator's hot paths (classic pytest-benchmark use).

These time the library itself rather than reproducing a paper figure: how
fast the analytical model evaluates, and how many simulated DMAs per second
the transaction-level simulation sustains.  Useful when extending the
simulator to check for performance regressions.
"""

from repro.core.bandwidth import effective_bidirectional_bandwidth_gbps
from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.core.nic import MODERN_NIC_KERNEL
from repro.sim.dma import DmaEngine
from repro.sim.host import HostSystem
from repro.sim.nicsim import simulate_nic
from repro.units import KIB


def test_micro_model_bandwidth_evaluation(benchmark):
    """Analytical effective-bandwidth evaluation over the Figure 1 size range."""

    def run():
        return [
            effective_bidirectional_bandwidth_gbps(size, PAPER_DEFAULT_CONFIG)
            for size in range(64, 1537, 16)
        ]

    values = benchmark(run)
    assert len(values) == 93


def test_micro_nic_model_evaluation(benchmark):
    """NIC interaction model throughput evaluation."""

    def run():
        return MODERN_NIC_KERNEL.throughput_sweep(range(64, 1537, 64))

    values = benchmark(run)
    assert len(values) == 24


def test_micro_simulated_latency_samples(benchmark):
    """Per-transaction latency simulation rate (LAT_RD, warm 8 KiB buffer)."""
    host = HostSystem.from_profile("NFP6000-HSW", seed=1)
    engine = DmaEngine(host)
    buffer = host.allocate_buffer(8 * KIB, 64)
    host.prepare(buffer, "host_warm")

    result = benchmark.pedantic(
        lambda: engine.measure_latency(buffer, "read", 1000),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.samples_ns.shape == (1000,)


def test_micro_simulated_bandwidth_run(benchmark):
    """Pipelined bandwidth simulation rate (BW_RD, warm 8 KiB buffer)."""
    host = HostSystem.from_profile("NFP6000-HSW", seed=1)
    engine = DmaEngine(host)
    buffer = host.allocate_buffer(8 * KIB, 64)
    host.prepare(buffer, "host_warm")

    result = benchmark.pedantic(
        lambda: engine.measure_bandwidth(buffer, "read", 1000),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.transactions == 1000


def test_micro_streaming_mode_memory_is_o1_in_packet_count():
    """``retain_samples=False`` memory does not grow with the packet count.

    The sketch's bucket occupancy is a function of the latency *dynamic
    range*, not of how many packets were summarised: quadrupling the run
    length must leave the number of occupied buckets essentially flat
    (never the 4x a retained sample store pays).  This is the regression
    guard for the fleet-scale O(1)-memory contract.
    """
    runs = {}
    for packets in (1_000, 4_000):
        result = simulate_nic(
            "dpdk",
            workload="imix",
            packets=packets,
            load_gbps=20.0,
            retain_samples=False,
            seed=7,
        )
        sketch = result.tx.latency.sketch
        assert sketch is not None
        assert sketch.count >= packets // 2
        runs[packets] = sketch.bucket_count
    # A generous fixed allowance for newly-touched tail buckets; the 4x
    # run would need ~4x the buckets if memory scaled with packet count.
    assert runs[4_000] <= runs[1_000] + 64
    assert runs[4_000] < runs[1_000] * 2
