"""Micro-benchmarks of the simulator's hot paths (classic pytest-benchmark use).

These time the library itself rather than reproducing a paper figure: how
fast the analytical model evaluates, and how many simulated DMAs per second
the transaction-level simulation sustains.  Useful when extending the
simulator to check for performance regressions.
"""

from repro.core.bandwidth import effective_bidirectional_bandwidth_gbps
from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.core.nic import MODERN_NIC_KERNEL
from repro.sim.dma import DmaEngine
from repro.sim.host import HostSystem
from repro.units import KIB


def test_micro_model_bandwidth_evaluation(benchmark):
    """Analytical effective-bandwidth evaluation over the Figure 1 size range."""

    def run():
        return [
            effective_bidirectional_bandwidth_gbps(size, PAPER_DEFAULT_CONFIG)
            for size in range(64, 1537, 16)
        ]

    values = benchmark(run)
    assert len(values) == 93


def test_micro_nic_model_evaluation(benchmark):
    """NIC interaction model throughput evaluation."""

    def run():
        return MODERN_NIC_KERNEL.throughput_sweep(range(64, 1537, 64))

    values = benchmark(run)
    assert len(values) == 24


def test_micro_simulated_latency_samples(benchmark):
    """Per-transaction latency simulation rate (LAT_RD, warm 8 KiB buffer)."""
    host = HostSystem.from_profile("NFP6000-HSW", seed=1)
    engine = DmaEngine(host)
    buffer = host.allocate_buffer(8 * KIB, 64)
    host.prepare(buffer, "host_warm")

    result = benchmark.pedantic(
        lambda: engine.measure_latency(buffer, "read", 1000),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.samples_ns.shape == (1000,)


def test_micro_simulated_bandwidth_run(benchmark):
    """Pipelined bandwidth simulation rate (BW_RD, warm 8 KiB buffer)."""
    host = HostSystem.from_profile("NFP6000-HSW", seed=1)
    engine = DmaEngine(host)
    buffer = host.allocate_buffer(8 * KIB, 64)
    host.prepare(buffer, "host_warm")

    result = benchmark.pedantic(
        lambda: engine.measure_bandwidth(buffer, "read", 1000),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.transactions == 1000
