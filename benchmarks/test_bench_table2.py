"""Benchmark: regenerate Table 2 (notable findings and recommendations)."""

from repro.experiments import table2_findings


def test_table2_findings(report):
    """IOMMU, DDIO and NUMA findings re-derived from fresh benchmark runs."""
    result = report(table2_findings.run)
    assert result.passed, result.to_text()
