"""Hybrid-mode behavioural smoke: certify, act, re-enter.

The fluid fast-path's correctness story is not throughput (on saturated
scenarios it stays in packet mode) but its *state machine*: a steady
queue must certify into fluid granularity, and a control action must
throw it back to packet mode — the certificate is only valid under the
knob settings it was sampled under.

This smoke runs the one scenario where all three transitions provably
happen (measured, seeded): a steady 512 B DPDK victim against a
sustained bulk IMIX aggressor on a mistuned 1:16 WRR fabric with the
threshold controller on a 20 µs window.  The controller boosts the
victim early (while its queues are still warming up), contention fades,
the victim certifies into fluid mode, and the controller's late weight
*decay* actions land while it is fluid — forcing a packet-mode re-entry
with reason ``"control"``.

Exit 1 when any of the three asserted transitions is missing:

* at least one control action landed,
* at least one queue certified into fluid mode (with fluid packets),
* at least one re-entry carries reason ``"control"``.

Usage::

    PYTHONPATH=src python benchmarks/hybrid_contend_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.contention import (  # noqa: E402
    ContentionParams,
    run_contention_benchmark,
)
from repro.bench.nicsim import NicSimParams  # noqa: E402
from repro.sim.fastpath import numpy_available  # noqa: E402
from repro.units import KIB, MIB  # noqa: E402


def main() -> int:
    if not numpy_available():
        print("numpy unavailable: hybrid smoke skipped (install [fast])")
        return 0
    victim = NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=512,
        offered_load_gbps=5.0,
        packets=6000,
        payload_window=256 * KIB,
    )
    aggressor = NicSimParams(
        model="kernel",
        workload="imix",
        packets=12000,
        payload_window=16 * MIB,
    )
    params = ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter="wrr",
        weights=(1.0, 16.0),
        controller="threshold",
        control_window_ns=20_000.0,
        mode="hybrid",
    )
    result = run_contention_benchmark(params)

    actions = len(result.control_actions)
    certifications = 0
    fluid_packets = 0
    reasons: dict[str, int] = {}
    for device in result.devices:
        for summary in (device.result.fluid or {}).values():
            certifications += summary["certifications"]
            fluid_packets += summary["fluid_packets"]
            for reason, count in summary["re_entry_reasons"].items():
                reasons[reason] = reasons.get(reason, 0) + count
    print(
        f"hybrid contend: {actions} control actions, "
        f"{certifications} certifications, {fluid_packets} fluid packets, "
        f"re-entry reasons {reasons or '{}'}"
    )

    failures = []
    if actions < 1:
        failures.append("no control action landed")
    if certifications < 1 or fluid_packets < 1:
        failures.append("no queue certified into fluid mode")
    if reasons.get("control", 0) < 1:
        failures.append("no control-action re-entry (reason 'control')")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
