"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they vary one modelling/design knob at
a time and print the resulting curve, so the effect of each mechanism
(payload sizes, driver batching, IOTLB capacity, DMA concurrency) can be
inspected in isolation.
"""

import pytest

from repro.analysis.table import format_series_table
from repro.bench.params import BenchmarkParams
from repro.bench.runner import BenchmarkRunner
from repro.core.bandwidth import effective_write_bandwidth_gbps
from repro.core.config import PCIeConfig
from repro.core.nic import MODERN_NIC_KERNEL, SIMPLE_NIC
from repro.sim.dma import DmaEngine
from repro.sim.host import HostSystem
from repro.units import KIB, MIB

SIZES = (64, 256, 1024)


def test_ablation_mps_mrrs(benchmark):
    """Effective write bandwidth as MPS grows: the protocol-overhead knob."""

    def run():
        series = {}
        for mps in (128, 256, 512, 1024):
            config = PCIeConfig(mps=mps, mrrs=max(512, mps))
            series[f"MPS={mps}"] = [
                (size, effective_write_bandwidth_gbps(size, config)) for size in SIZES
            ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(format_series_table(series, x_label="size (B)", title="MPS ablation (Gb/s)"))
    # Larger MPS always helps large transfers.
    assert series["MPS=1024"][-1][1] > series["MPS=128"][-1][1]


def test_ablation_descriptor_batching(benchmark):
    """Throughput of the simple NIC as descriptor batching is turned up."""

    def run():
        series = {}
        for batch in (1, 4, 16, 64):
            model = SIMPLE_NIC.with_(
                name=f"batch={batch}",
                tx_descriptor_batch=float(batch),
                rx_freelist_batch=float(batch),
                doorbell_batch=float(batch),
                interrupt_moderation=float(batch),
            )
            series[f"batch={batch}"] = model.throughput_sweep(SIZES)
        series["Modern NIC (kernel driver)"] = MODERN_NIC_KERNEL.throughput_sweep(SIZES)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(
        format_series_table(
            series, x_label="size (B)", title="Descriptor batching ablation (Gb/s)"
        )
    )
    assert series["batch=64"][0][1] > series["batch=1"][0][1]


def test_ablation_iotlb_capacity(benchmark):
    """64 B read bandwidth over a 16 MiB window as the IOTLB grows."""

    def run():
        points = []
        for entries in (16, 64, 256, 1024):
            host = HostSystem.from_profile(
                "NFP6000-BDW".lower() and "NFP6000-BDW", iommu_enabled=True, seed=7
            )
            host.profile = host.profile.with_(iotlb_entries=entries)
            host.iommu.config.iotlb_entries = entries
            host.iommu.iotlb.entries = entries
            engine = DmaEngine(host)
            buffer = host.allocate_buffer(16 * MIB, 64)
            host.prepare(buffer, "host_warm")
            points.append((entries, engine.measure_bandwidth(buffer, "read", 1500).gbps))
        return {"64B BW_RD, 16MiB window": points}

    series = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(
        format_series_table(
            series, x_label="IOTLB entries", title="IOTLB capacity ablation (Gb/s)"
        )
    )
    points = series["64B BW_RD, 16MiB window"]
    assert points[-1][1] > points[0][1]


def test_ablation_dma_concurrency(benchmark):
    """64 B read bandwidth as the device's in-flight DMA window grows."""

    def run():
        points = []
        for inflight in (4, 8, 16, 32, 64):
            host = HostSystem.from_profile("NFP6000-HSW", seed=7)
            device = host.device.with_engine(max_inflight=inflight)
            engine = DmaEngine(host, device=device)
            buffer = host.allocate_buffer(8 * KIB, 64)
            host.prepare(buffer, "host_warm")
            points.append(
                (inflight, engine.measure_bandwidth(buffer, "read", 1500).gbps)
            )
        return {"64B BW_RD": points}

    series = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(
        format_series_table(
            series,
            x_label="in-flight DMAs",
            title="DMA concurrency ablation (Gb/s)",
        )
    )
    points = series["64B BW_RD"]
    # More concurrency helps until the engine issue rate / link takes over.
    assert points[2][1] > points[0][1]


def test_ablation_window_size_cache_pressure(benchmark):
    """Warm-cache 64 B read bandwidth vs window size on one host (BDW, 25 MiB LLC)."""

    def run():
        runner = BenchmarkRunner()
        base = BenchmarkParams(
            kind="BW_RD",
            transfer_size=64,
            cache_state="host_warm",
            system="NFP6000-BDW",
            transactions=1200,
        )
        results = runner.sweep_window_size(
            base, [64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB]
        )
        return {
            "64B BW_RD (warm)": [
                (r.params.window_size, r.bandwidth_gbps) for r in results
            ]
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(
        format_series_table(
            series, x_label="window (B)", title="Cache pressure ablation (Gb/s)"
        )
    )
    points = series["64B BW_RD (warm)"]
    assert points[0][1] >= points[-1][1]
