"""Benchmark: regenerate Figure 5 (median LAT_RD / LAT_WRRD vs transfer size)."""

from repro.experiments import fig5_baseline_latency


def test_figure5_baseline_latency(report):
    """Median DMA latency for the NFP and NetFPGA across transfer sizes."""
    result = report(fig5_baseline_latency.run)
    assert result.passed, result.to_text()
