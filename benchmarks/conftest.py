"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure or table of the paper.  The
pytest-benchmark fixture times a single full regeneration (rounds=1 — these
are experiment drivers, not micro-kernels), and the experiment's data series
and shape-check outcomes are printed so the run's output contains the same
rows/series the paper reports.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult


def run_and_report(benchmark, runner, *, quick: bool = True) -> ExperimentResult:
    """Time one experiment run and print its rows/series and checks."""
    result = benchmark.pedantic(
        runner, kwargs={"quick": quick}, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.to_text())
    return result


@pytest.fixture
def report(benchmark):
    """Fixture wrapping :func:`run_and_report` around the benchmark fixture."""

    def _report(runner, *, quick: bool = True) -> ExperimentResult:
        return run_and_report(benchmark, runner, quick=quick)

    return _report
