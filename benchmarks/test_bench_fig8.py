"""Benchmark: regenerate Figure 8 (NUMA local vs remote DMA read bandwidth)."""

from repro.experiments import fig8_numa


def test_figure8_numa(report):
    """Percentage change of remote vs local read bandwidth (NFP6000-BDW)."""
    result = report(fig8_numa.run)
    assert result.passed, result.to_text()
