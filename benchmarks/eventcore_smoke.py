"""Event-core perf smoke: gate the engine's throughput against a baseline.

Runs the profiled IMIX bursty scenario (the canonical hot-path workload:
``dpdk`` model, ``bursty-imix`` at 24 Gb/s, 4000 packets per direction,
seed 7 — the exact scenario the event-core rework was measured on) and
writes ``BENCH_eventcore.json`` with the achieved events/sec and peak RSS.

Wall-clock throughput is not comparable across machines, so the gate is
**calibrated**: a fixed pure-Python busy loop is timed on the same
machine, and the score that is compared across runs is
``events_per_sec / calibration_ops_per_sec`` — events retired per
calibration op, a machine-speed-normalised measure of how much work the
engine does per unit of interpreter throughput.  The run fails (exit 1)
when that normalised score regresses more than ``REGRESSION_BUDGET``
below the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/eventcore_smoke.py            # gate
    PYTHONPATH=src python benchmarks/eventcore_smoke.py --rebaseline
"""

from __future__ import annotations

import heapq
import json
import resource
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.nicsim import NicDatapathSimulator  # noqa: E402
from repro.workloads import bursty_imix_workload  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_eventcore.json"

#: Fail when the calibrated score drops more than this below baseline.
REGRESSION_BUDGET = 0.30

#: The scenario under test — keep in lockstep with the README table.
MODEL = "dpdk"
WORKLOAD = "bursty-imix"
LOAD_GBPS = 24.0
PACKETS = 4000
SEED = 7
ROUNDS = 5

#: Iterations of the calibration busy loop (a mix of float arithmetic,
#: lambda dispatch and heap churn — the same interpreter operations the
#: event loop spends its time on).
CALIBRATION_OPS = 200_000


def calibrate() -> float:
    """Interpreter speed score: calibration ops per second (best of 3)."""

    def burn() -> float:
        heap: list[float] = []
        acc = 0.0
        push, pop = heapq.heappush, heapq.heappop
        for i in range(CALIBRATION_OPS):
            acc += (lambda x: x * 1.0000001)(float(i))
            if i & 7 == 0:
                push(heap, acc)
            if i & 63 == 0 and heap:
                acc -= pop(heap)
        return acc

    best = float("inf")
    for _ in range(3):
        start = perf_counter()
        burn()
        best = min(best, perf_counter() - start)
    return CALIBRATION_OPS / best


def measure() -> dict[str, float | int]:
    """Warm up once, then take the best-of-ROUNDS profiled run."""
    workload = bursty_imix_workload(load_gbps=LOAD_GBPS)
    simulator = NicDatapathSimulator(MODEL)
    simulator.run(workload, PACKETS, seed=SEED)  # warm caches and buckets
    best_events_s = float("inf")
    for _ in range(ROUNDS):
        simulator.run(workload, PACKETS, seed=SEED)
        profile = simulator.last_profile
        assert profile is not None
        if profile.events_s < best_events_s:
            best_events_s = profile.events_s
            best = profile
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "events": best.events,
        "events_wall_s": best.events_s,
        "events_per_sec": best.events_per_sec,
        "total_wall_s": best.total_s,
        "peak_rss_kib": peak_rss_kib,
    }


def main(argv: list[str]) -> int:
    rebaseline = "--rebaseline" in argv
    record = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}

    calibration = calibrate()
    current = measure()
    score = current["events_per_sec"] / calibration
    current["calibration_ops_per_sec"] = calibration
    current["calibrated_score"] = score

    print(
        f"event core: {current['events']} events in "
        f"{current['events_wall_s'] * 1e3:.1f} ms "
        f"({current['events_per_sec']:,.0f} events/s), "
        f"peak RSS {current['peak_rss_kib'] / 1024:.0f} MiB"
    )
    print(
        f"calibration: {calibration:,.0f} ops/s -> score "
        f"{score:.4f} events per calibration op"
    )

    record["scenario"] = {
        "model": MODEL,
        "workload": WORKLOAD,
        "load_gbps": LOAD_GBPS,
        "packets": PACKETS,
        "seed": SEED,
        "rounds": ROUNDS,
    }
    record["current"] = current
    baseline = record.get("baseline")
    if rebaseline or baseline is None:
        record["baseline"] = dict(current)
        print("baseline " + ("rewritten" if baseline else "recorded"))
        baseline = record["baseline"]

    exit_code = 0
    floor = baseline["calibrated_score"] * (1.0 - REGRESSION_BUDGET)
    ratio = score / baseline["calibrated_score"]
    print(
        f"vs baseline: {ratio:.2f}x "
        f"(floor {1.0 - REGRESSION_BUDGET:.0%} of baseline)"
    )
    if score < floor:
        print(
            f"FAIL: calibrated score {score:.4f} regressed more than "
            f"{REGRESSION_BUDGET:.0%} below the baseline "
            f"{baseline['calibrated_score']:.4f}",
            file=sys.stderr,
        )
        exit_code = 1

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"record written to {RESULT_PATH}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
