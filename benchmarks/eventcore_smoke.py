"""Event-core perf smoke: gate the engines' throughput against a baseline.

Runs the profiled IMIX bursty scenario (the canonical hot-path workload:
``dpdk`` model, ``bursty-imix`` at 24 Gb/s, 4000 packets per direction,
seed 7 — the exact scenario the event-core rework was measured on) once
per engine mode and writes ``BENCH_eventcore.json`` with one entry per
mode (achieved events/sec, wall time per phase, peak RSS).

Wall-clock throughput is not comparable across machines, so the exact
engine's gate is **calibrated**: a fixed pure-Python busy loop is timed
on the same machine, and the score compared across runs is
``events_per_sec / calibration_ops_per_sec`` — events retired per
calibration op, a machine-speed-normalised measure of how much work the
engine does per unit of interpreter throughput.  The run fails (exit 1)
when that normalised score regresses more than ``REGRESSION_BUDGET``
below the committed baseline.

The batch engine's gate needs no calibration at all: exact and batch run
back to back in the same process, so their **total wall-time ratio** is
machine-independent.  Batch must finish the scenario at least
``BATCH_SPEEDUP_FLOOR``x faster end to end than the exact engine did in
the same invocation.

The hybrid engine is recorded but not gated here: on this saturated
scenario its certificates rarely hold (arrival-gap knees force packet
mode), so it tracks the exact engine — its behavioural gate is the
contention re-entry smoke (``benchmarks/hybrid_contend_smoke.py``).

Usage::

    PYTHONPATH=src python benchmarks/eventcore_smoke.py              # gate
    PYTHONPATH=src python benchmarks/eventcore_smoke.py --mode exact,batch
    PYTHONPATH=src python benchmarks/eventcore_smoke.py --rebaseline
"""

from __future__ import annotations

import heapq
import json
import resource
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.fastpath import numpy_available  # noqa: E402
from repro.sim.nicsim import NicDatapathSimulator  # noqa: E402
from repro.workloads import bursty_imix_workload  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_eventcore.json"

#: Fail when the exact engine's calibrated score drops more than this
#: below baseline.
REGRESSION_BUDGET = 0.30

#: Fail when batch is not at least this much faster (total wall time)
#: than the exact engine measured in the same invocation.
BATCH_SPEEDUP_FLOOR = 3.0

#: The scenario under test — keep in lockstep with the README table.
MODEL = "dpdk"
WORKLOAD = "bursty-imix"
LOAD_GBPS = 24.0
PACKETS = 4000
SEED = 7
ROUNDS = 5

#: Iterations of the calibration busy loop (a mix of float arithmetic,
#: lambda dispatch and heap churn — the same interpreter operations the
#: event loop spends its time on).
CALIBRATION_OPS = 200_000


def calibrate() -> float:
    """Interpreter speed score: calibration ops per second (best of 3)."""

    def burn() -> float:
        heap: list[float] = []
        acc = 0.0
        push, pop = heapq.heappush, heapq.heappop
        for i in range(CALIBRATION_OPS):
            acc += (lambda x: x * 1.0000001)(float(i))
            if i & 7 == 0:
                push(heap, acc)
            if i & 63 == 0 and heap:
                acc -= pop(heap)
        return acc

    best = float("inf")
    for _ in range(3):
        start = perf_counter()
        burn()
        best = min(best, perf_counter() - start)
    return CALIBRATION_OPS / best


def measure(mode: str) -> dict[str, float | int | str]:
    """Warm up once, then take the best-of-ROUNDS profiled run of ``mode``.

    Best-of selects on **total** wall time (build + events + stats): the
    batch engine moves work out of the event phase into array build and
    vectorised statistics, so only the end-to-end time compares engines
    fairly.
    """
    workload = bursty_imix_workload(load_gbps=LOAD_GBPS)
    simulator = NicDatapathSimulator(MODEL)
    simulator.run(workload, PACKETS, seed=SEED, mode=mode)  # warm caches
    best = None
    for _ in range(ROUNDS):
        simulator.run(workload, PACKETS, seed=SEED, mode=mode)
        profile = simulator.last_profile
        assert profile is not None
        if best is None or profile.total_s < best.total_s:
            best = profile
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "mode": best.mode,
        "events": best.events,
        "events_wall_s": best.events_s,
        "events_per_sec": best.events_per_sec,
        "total_wall_s": best.total_s,
        "solve_wall_s": best.solve_s,
        "peak_rss_kib": peak_rss_kib,
    }


def main(argv: list[str]) -> int:
    rebaseline = "--rebaseline" in argv
    modes = ["exact", "batch", "hybrid"]
    for index, arg in enumerate(argv):
        if arg == "--mode":
            modes = [m.strip() for m in argv[index + 1].split(",") if m.strip()]
        elif arg.startswith("--mode="):
            modes = [
                m.strip()
                for m in arg.split("=", 1)[1].split(",")
                if m.strip()
            ]
    unknown = [m for m in modes if m not in ("exact", "batch", "hybrid")]
    if unknown:
        print(f"unknown mode(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if not numpy_available():
        skipped = [m for m in modes if m != "exact"]
        if skipped:
            print(
                "numpy unavailable: skipping "
                + ", ".join(skipped)
                + " (install the [fast] extra)"
            )
        modes = [m for m in modes if m == "exact"]
        if not modes:
            return 0

    record = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    calibration = calibrate()
    measured: dict[str, dict] = {}
    for mode in modes:
        current = measure(mode)
        current["calibration_ops_per_sec"] = calibration
        current["calibrated_score"] = (
            current["events_per_sec"] / calibration
        )
        measured[mode] = current
        print(
            f"{mode}: {current['events']} events in "
            f"{current['events_wall_s'] * 1e3:.1f} ms, total "
            f"{current['total_wall_s'] * 1e3:.1f} ms "
            f"({current['events_per_sec']:,.0f} events/s), "
            f"peak RSS {current['peak_rss_kib'] / 1024:.0f} MiB"
        )

    record["scenario"] = {
        "model": MODEL,
        "workload": WORKLOAD,
        "load_gbps": LOAD_GBPS,
        "packets": PACKETS,
        "seed": SEED,
        "rounds": ROUNDS,
    }
    record.setdefault("modes", {}).update(measured)
    exit_code = 0

    # -- exact: calibrated regression gate ---------------------------------
    if "exact" in measured:
        current = measured["exact"]
        score = current["calibrated_score"]
        print(
            f"calibration: {calibration:,.0f} ops/s -> exact score "
            f"{score:.4f} events per calibration op"
        )
        record["current"] = current
        baseline = record.get("baseline")
        if rebaseline or baseline is None:
            record["baseline"] = dict(current)
            print("baseline " + ("rewritten" if baseline else "recorded"))
            baseline = record["baseline"]
        floor = baseline["calibrated_score"] * (1.0 - REGRESSION_BUDGET)
        ratio = score / baseline["calibrated_score"]
        print(
            f"exact vs baseline: {ratio:.2f}x "
            f"(floor {1.0 - REGRESSION_BUDGET:.0%} of baseline)"
        )
        if score < floor:
            print(
                f"FAIL: calibrated score {score:.4f} regressed more than "
                f"{REGRESSION_BUDGET:.0%} below the baseline "
                f"{baseline['calibrated_score']:.4f}",
                file=sys.stderr,
            )
            exit_code = 1

    # -- batch: same-invocation speedup gate --------------------------------
    if "batch" in measured:
        if "exact" in measured:
            speedup = (
                measured["exact"]["total_wall_s"]
                / measured["batch"]["total_wall_s"]
            )
            record["batch_speedup"] = speedup
            print(
                f"batch vs exact: {speedup:.2f}x total wall time "
                f"(floor {BATCH_SPEEDUP_FLOOR:.1f}x)"
            )
            if speedup < BATCH_SPEEDUP_FLOOR:
                print(
                    f"FAIL: batch engine is only {speedup:.2f}x faster "
                    f"than exact (needs >= {BATCH_SPEEDUP_FLOOR:.1f}x)",
                    file=sys.stderr,
                )
                exit_code = 1
        else:
            print(
                "batch speedup gate skipped: no exact measurement in "
                "this invocation (run with --mode exact,batch)"
            )

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"record written to {RESULT_PATH}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
