"""Benchmark: regenerate Figure 2 (ExaNIC loopback latency, PCIe share)."""

from repro.experiments import fig2_exanic_latency


def test_figure2_exanic_latency(report):
    """NIC loopback latency and its PCIe contribution vs transfer size."""
    result = report(fig2_exanic_latency.run)
    assert result.passed, result.to_text()
